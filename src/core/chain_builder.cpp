#include "core/chain_builder.hpp"

#include <algorithm>

#include "linalg/structure.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"

namespace perfbg::core {

namespace {

using linalg::Matrix;
using linalg::Vector;

/// Adds an n x n rate block at macro position (row, col) of m, where n is
/// the combined phase count.
void add_block(Matrix& m, std::size_t phases, std::size_t row, std::size_t col,
               const Matrix& block) {
  PERFBG_REQUIRE((row + 1) * phases <= m.rows() && (col + 1) * phases <= m.cols(),
                 "macro block position out of range");
  for (std::size_t a = 0; a < phases; ++a) {
    double* dst = m.row_data(row * phases + a) + col * phases;
    const double* src = block.row_data(a);
    for (std::size_t b = 0; b < phases; ++b) dst[b] += src[b];
  }
}

/// Sets the diagonal of macro row `row` of `diag_home` so the total row sum
/// across the listed matrices is zero (the generator property).
void close_rows(Matrix& diag_home, std::size_t phases, std::size_t row,
                const std::vector<const Matrix*>& row_blocks) {
  for (std::size_t a = 0; a < phases; ++a) {
    const std::size_t i = row * phases + a;
    double s = 0.0;
    for (const Matrix* m : row_blocks) s += m->row_sum(i);
    diag_home(i, i) -= s;
  }
}

Matrix outer(const Vector& col, const Vector& row) {
  Matrix m(col.size(), row.size());
  for (std::size_t i = 0; i < col.size(); ++i)
    for (std::size_t j = 0; j < row.size(); ++j) m(i, j) = col[i] * row[j];
  return m;
}

Matrix offdiag(Matrix m) {
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) = 0.0;
  return m;
}

Matrix kron3(const Matrix& a, const Matrix& b, const Matrix& c) {
  return linalg::kron(linalg::kron(a, b), c);
}

}  // namespace

qbd::QbdProcess build_fgbg_qbd(const FgBgParams& params, const FgBgLayout& layout) {
  params.validate();
  obs::ScopedSpan span("core.chain_build.assemble");
  span.attr("phases", obs::JsonValue(static_cast<std::int64_t>(layout.phases())))
      .attr("bg_buffer", obs::JsonValue(layout.bg_buffer()));
  // Combined phase space (paper Fig. 4 / Eq. 6, generalized per its footnote
  // 3 to PH service and PH idle wait): arrival (x) service (x) idle-wait,
  // index k = (arrival * m_s + service) * m_w + wait. The service phase is
  // frozen in idle states and redrawn from alpha_s on every completion; the
  // wait phase is frozen outside idle states and redrawn from alpha_w on
  // every entry into an idle state.
  const traffic::PhaseType service = params.effective_service();
  const traffic::PhaseType wait = params.effective_idle_wait();
  const std::size_t arr_phases = params.arrivals.phases();
  const std::size_t svc_phases = service.phases();
  const std::size_t wait_phases = wait.phases();
  const std::size_t phases = arr_phases * svc_phases * wait_phases;
  PERFBG_REQUIRE(layout.phases() == phases,
                 "layout phases must be arrival x service x idle-wait phases");
  const int x_cap = layout.bg_buffer();
  PERFBG_REQUIRE((params.background_disabled() && x_cap == 0) ||
                     (!params.background_disabled() && x_cap == params.bg_buffer),
                 "layout buffer must match params (0 when background is disabled)");

  const double p = params.bg_probability;
  const Matrix i_arr = Matrix::identity(arr_phases);
  const Matrix i_svc = Matrix::identity(svc_phases);
  const Matrix i_wait = Matrix::identity(wait_phases);
  const Matrix redraw_wait = outer(Vector(wait_phases, 1.0), wait.alpha());

  const Matrix arrive = kron3(params.arrivals.d1(), i_svc, i_wait);
  const Matrix arrival_moves = kron3(offdiag(params.arrivals.d0()), i_svc, i_wait);
  const Matrix service_moves = kron3(i_arr, offdiag(service.subgenerator()), i_wait);
  const Matrix wait_moves = kron3(i_arr, i_svc, offdiag(wait.subgenerator()));
  // Completion blocks: the next service phase is pre-drawn from alpha_s;
  // entering an idle state additionally redraws the wait phase.
  const Matrix svc_restart = outer(service.exit_rates(), service.alpha());
  const Matrix complete_to_serving = kron3(i_arr, svc_restart, i_wait);
  const Matrix complete_to_idle = kron3(i_arr, svc_restart, redraw_wait);
  const Matrix idle_expiry = kron3(i_arr, i_svc, outer(wait.exit_rates(), wait.alpha()));

  const std::size_t nb = layout.boundary_flat_size();
  const std::size_t nr = layout.repeating_flat_size();
  qbd::QbdProcess q;
  q.b00 = Matrix(nb, nb, 0.0);
  q.b01 = Matrix(nb, nr, 0.0);
  q.b10 = Matrix(nr, nb, 0.0);
  q.a0 = Matrix(nr, nr, 0.0);
  q.a1 = Matrix(nr, nr, 0.0);
  q.a2 = Matrix(nr, nr, 0.0);

  // ---- Boundary rows (levels 0..X) ----
  const auto& bstates = layout.boundary();
  for (std::size_t s = 0; s < bstates.size(); ++s) {
    const StateDesc st = bstates[s];
    const int level = st.x + st.y;
    add_block(q.b00, phases, s, s, arrival_moves);
    add_block(q.b00, phases, s, s,
              st.kind == Activity::kIdle ? wait_moves : service_moves);

    switch (st.kind) {
      case Activity::kFgService: {
        // Arrival: F(x, y) -> F(x, y+1), one level up.
        if (level + 1 <= x_cap) {
          add_block(q.b00, phases, s, layout.boundary_index(st.kind, st.x, st.y + 1), arrive);
        } else {
          add_block(q.b01, phases, s, layout.repeating_index(Activity::kFgService, st.x),
                    arrive);
        }
        // Completion without spawn (boundary F states always have x < X,
        // except in the degenerate X == 0 space where p == 0).
        if (st.y >= 2) {
          add_block(q.b00, phases, s,
                    layout.boundary_index(Activity::kFgService, st.x, st.y - 1),
                    complete_to_serving * (1.0 - p));
        } else {
          add_block(q.b00, phases, s, layout.boundary_index(Activity::kIdle, st.x, 0),
                    complete_to_idle * (1.0 - p));
        }
        // Completion with spawn: x grows, y shrinks (same level).
        if (p > 0.0) {
          PERFBG_ASSERT(st.x < x_cap, "boundary F state at full buffer");
          if (st.y >= 2) {
            add_block(q.b00, phases, s,
                      layout.boundary_index(Activity::kFgService, st.x + 1, st.y - 1),
                      complete_to_serving * p);
          } else {
            add_block(q.b00, phases, s, layout.boundary_index(Activity::kIdle, st.x + 1, 0),
                      complete_to_idle * p);
          }
        }
        break;
      }
      case Activity::kBgService: {
        // Arrival: B(x, y) -> B(x, y+1), one level up.
        if (level + 1 <= x_cap) {
          add_block(q.b00, phases, s, layout.boundary_index(st.kind, st.x, st.y + 1), arrive);
        } else {
          add_block(q.b01, phases, s, layout.repeating_index(Activity::kBgService, st.x),
                    arrive);
        }
        // Background completion: the head foreground job (if any) enters
        // service, else the system goes idle and a fresh idle wait starts.
        if (st.y >= 1) {
          add_block(q.b00, phases, s,
                    layout.boundary_index(Activity::kFgService, st.x - 1, st.y),
                    complete_to_serving);
        } else {
          add_block(q.b00, phases, s, layout.boundary_index(Activity::kIdle, st.x - 1, 0),
                    complete_to_idle);
        }
        break;
      }
      case Activity::kIdle: {
        // Arrival interrupts the idle wait; the foreground job starts at
        // once, in the service phase pre-drawn on the way into idleness.
        if (st.x + 1 <= x_cap) {
          add_block(q.b00, phases, s, layout.boundary_index(Activity::kFgService, st.x, 1),
                    arrive);
        } else {
          add_block(q.b01, phases, s, layout.repeating_index(Activity::kFgService, st.x),
                    arrive);
        }
        // Idle wait expires: a background job starts service.
        if (st.x >= 1) {
          add_block(q.b00, phases, s, layout.boundary_index(Activity::kBgService, st.x, 0),
                    idle_expiry);
        }
        break;
      }
    }
  }

  // ---- Repeating rows (levels j > X); also emits B10 for level X+1 ----
  const auto& rstates = layout.repeating();
  for (std::size_t s = 0; s < rstates.size(); ++s) {
    const StateDesc st = rstates[s];
    add_block(q.a1, phases, s, s, arrival_moves);
    add_block(q.a1, phases, s, s, service_moves);
    add_block(q.a0, phases, s, s, arrive);  // arrival: same slot, one level up

    if (st.kind == Activity::kFgService) {
      const bool at_cap = st.x == x_cap;
      if (!at_cap && p > 0.0) {
        // Spawn: x+1, y-1 — stays within the level.
        add_block(q.a1, phases, s, layout.repeating_index(Activity::kFgService, st.x + 1),
                  complete_to_serving * p);
      }
      // Down one level: same slot. At the cap the spawn is dropped, so the
      // full completion flow goes down.
      add_block(q.a2, phases, s, s, complete_to_serving * (at_cap ? 1.0 : 1.0 - p));
      // Level X+1 -> X: y = X+1-x. For x < X the target is F(x, X-x); at the
      // cap y-1 = 0, so the system goes idle at I(X, 0).
      if (at_cap) {
        add_block(q.b10, phases, s, layout.boundary_index(Activity::kIdle, x_cap, 0),
                  complete_to_idle);
      } else {
        add_block(q.b10, phases, s,
                  layout.boundary_index(Activity::kFgService, st.x, x_cap - st.x),
                  complete_to_serving * (1.0 - p));
      }
    } else {  // BgService
      // Background completion: x-1, y unchanged — down one level into the
      // F(x-1) slot.
      add_block(q.a2, phases, s, layout.repeating_index(Activity::kFgService, st.x - 1),
                complete_to_serving);
      // Level X+1 -> X: y = X+1-x >= 1, target F(x-1, X+1-x).
      add_block(q.b10, phases, s,
                layout.boundary_index(Activity::kFgService, st.x - 1, x_cap + 1 - st.x),
                complete_to_serving);
    }
  }

  // ---- Close the diagonals so every generator row sums to zero ----
  for (std::size_t s = 0; s < bstates.size(); ++s)
    close_rows(q.b00, phases, s, {&q.b00, &q.b01});
  for (std::size_t s = 0; s < rstates.size(); ++s)
    close_rows(q.a1, phases, s, {&q.a1, &q.a0, &q.a2});

  // Boundary states are emitted level by level; record the level partition so
  // the solution can use the block-tridiagonal boundary solve.
  int last_level = -1;
  for (std::size_t s = 0; s < bstates.size(); ++s) {
    const int level = bstates[s].x + bstates[s].y;
    PERFBG_ASSERT(level >= last_level, "boundary states must be level-ordered");
    if (level != last_level) q.boundary_level_offsets.push_back(s * phases);
    last_level = level;
  }

  // Detected structure of the repeating blocks, exported on the assembly
  // span: the A-blocks are what every R-solver iteration touches, so their
  // sparsity/bandwidth profile explains the solve cost at a glance.
  const auto export_structure = [&span](const char* kind_key, const char* nnz_key,
                                        const char* bw_key, const Matrix& block) {
    const linalg::StructureInfo info = linalg::detect_structure(block);
    span.attr(kind_key, obs::JsonValue(linalg::structure_kind_name(info.kind())))
        .attr(nnz_key, obs::JsonValue(static_cast<std::int64_t>(info.nnz)))
        .attr(bw_key, obs::JsonValue(static_cast<std::int64_t>(
                          std::max(info.lower_bandwidth, info.upper_bandwidth))));
  };
  export_structure("a0.structure", "a0.nnz", "a0.bandwidth", q.a0);
  export_structure("a1.structure", "a1.nnz", "a1.bandwidth", q.a1);
  export_structure("a2.structure", "a2.nnz", "a2.bandwidth", q.a2);

  q.validate();
  q.prevalidated = true;
  return q;
}

}  // namespace perfbg::core
