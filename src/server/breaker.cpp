#include "server/breaker.hpp"

namespace perfbg::server {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

BreakerDecision CircuitBreaker::admit(const std::string& model_class) {
  if (threshold_ < 1) return {};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(model_class);
  if (it == classes_.end()) return {};
  ClassState& cls = it->second;
  switch (cls.state) {
    case State::kClosed:
      return {};
    case State::kHalfOpen: {
      // A probe is already in the air; fail fast until it reports back.
      BreakerDecision d;
      d.allow = false;
      d.last_error = cls.last_error;
      d.retry_after_ms = cooldown_ms_;
      if (metrics_) metrics_->add("server.breaker.fastfail");
      return d;
    }
    case State::kOpen: {
      const double waited = ms_between(cls.opened_at, std::chrono::steady_clock::now());
      if (waited >= cooldown_ms_) {
        cls.state = State::kHalfOpen;
        if (metrics_) metrics_->add("server.breaker.probes");
        BreakerDecision d;
        d.probe = true;
        return d;
      }
      BreakerDecision d;
      d.allow = false;
      d.last_error = cls.last_error;
      d.retry_after_ms = cooldown_ms_ - waited;
      if (metrics_) metrics_->add("server.breaker.fastfail");
      return d;
    }
  }
  return {};
}

void CircuitBreaker::report(const std::string& model_class,
                            const std::string& error_code,
                            const std::string& error_message, bool was_probe) {
  if (threshold_ < 1) return;
  const bool failure = counts_as_failure(error_code);
  // Neutral outcomes (deadline, overload, bad request, interrupt) say nothing
  // about the class's numerical health — except for a probe, whose neutral
  // outcome must re-open the class so the next cool-down elects a new probe.
  if (!failure && !error_code.empty() && !was_probe) return;

  std::lock_guard<std::mutex> lock(mu_);
  ClassState& cls = classes_[model_class];
  if (error_code.empty()) {
    if (cls.state != State::kClosed && metrics_)
      metrics_->add("server.breaker.recovered");
    cls = ClassState{};
    update_open_gauge_locked();
    return;
  }
  if (!failure) {
    // A probe that ended with a neutral code: back to open, fresh cool-down.
    cls.state = State::kOpen;
    cls.opened_at = std::chrono::steady_clock::now();
    return;
  }
  cls.last_error = error_message.empty() ? error_code : error_message;
  ++cls.consecutive_failures;
  if (cls.state == State::kHalfOpen || cls.consecutive_failures >= threshold_) {
    if (cls.state != State::kOpen && metrics_) metrics_->add("server.breaker.trips");
    cls.state = State::kOpen;
    cls.opened_at = std::chrono::steady_clock::now();
    update_open_gauge_locked();
  }
}

std::size_t CircuitBreaker::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_count_locked();
}

std::size_t CircuitBreaker::open_count_locked() const {
  std::size_t n = 0;
  for (const auto& [name, cls] : classes_)
    if (cls.state != State::kClosed) ++n;
  return n;
}

void CircuitBreaker::update_open_gauge_locked() {
  if (metrics_) metrics_->set("server.breaker.open", static_cast<double>(open_count_locked()));
}

}  // namespace perfbg::server
