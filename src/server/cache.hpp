// R-matrix/solution memo cache with single-flight request coalescing
// (DESIGN.md §13).
//
// The cache is keyed by the FNV-1a 64 hash of a request's canonical key —
// the same inputs-hash convention the sweep journal uses — and holds the
// finished wire payload of successful solves, LRU-bounded so a scan of
// distinct models can never grow the daemon without bound.
//
// Coalescing: the first requester of a missing key becomes the *leader* of a
// Flight; every identical request arriving while that flight is in the air
// joins it as a waiter instead of occupying a queue slot or a solver thread.
// When the leader's solve completes (or is force-completed by the watchdog or
// the drain path), every waiter wakes with the shared outcome — a thundering
// herd of N identical queries costs one solver execution, one queue slot, and
// N-1 `server.cache.coalesced` counter increments.
//
// Completion is idempotent and first-writer-wins: a wedged solve the watchdog
// already evicted may eventually return a result, which is then recorded into
// the cache (it is valid) but no longer changes the responses already sent.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/cancellation.hpp"

namespace perfbg::server {

/// Shared outcome of one request execution: the leader (or the watchdog)
/// completes it exactly once; waiters block on `wait_done`.
class Flight {
 public:
  explicit Flight(std::string key) : key_(std::move(key)) {}

  const std::string& key() const { return key_; }
  CancellationToken& token() { return token_; }

  /// Wall-clock point the executing solve must be finished by (set before the
  /// flight is published, so the watchdog reads it race-free; the watchdog
  /// evicts flights past it). Zero when the flight has no deadline.
  std::chrono::steady_clock::time_point deadline{};
  /// When the flight was created (queue-age accounting).
  std::chrono::steady_clock::time_point created = std::chrono::steady_clock::now();

  /// First completion wins; later calls are no-ops returning false. An empty
  /// error_code means success with `result`.
  bool complete(obs::JsonValue result, obs::JsonValue health, std::string error_code,
                std::string error_message, double wall_ms);

  /// Blocks until the flight completes or `own_deadline` passes (a waiter's
  /// own budget can be shorter than the leader's). Returns false on timeout —
  /// the flight itself keeps flying for the other waiters.
  bool wait_done(std::chrono::steady_clock::time_point own_deadline);

  bool done() const;

  /// Trace linkage: the leader publishes its trace id, root span id and model
  /// class once it claims the flight; joiners and the watchdog read them to
  /// link their responses / eviction records to the leader's trace. Guarded
  /// by the flight mutex because the watchdog and joiner threads read while
  /// the leader's connection thread writes.
  void set_trace(std::uint64_t trace_id, std::int64_t root_span, std::string model_class);
  std::uint64_t trace_id() const;
  std::int64_t root_span() const;
  std::string model_class() const;

  /// Queue age observed by the worker when execution actually started
  /// (ms between flight creation and dequeue); -1 until then. Written by the
  /// worker thread, read by the leader's connection thread after wait_done.
  void set_queue_ms(double ms);
  double queue_ms() const;

  // Outcome accessors; valid only after wait_done() returned true.
  const obs::JsonValue& result() const { return result_; }
  const obs::JsonValue& health() const { return health_; }
  const std::string& error_code() const { return error_code_; }
  const std::string& error_message() const { return error_message_; }
  double wall_ms() const { return wall_ms_; }
  bool ok() const { return error_code_.empty(); }

 private:
  std::string key_;
  CancellationToken token_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::uint64_t trace_id_ = 0;
  std::int64_t root_span_ = -1;
  std::string model_class_;
  double queue_ms_ = -1.0;
  obs::JsonValue result_;
  obs::JsonValue health_;
  std::string error_code_;
  std::string error_message_;
  double wall_ms_ = 0.0;
};

/// A finished, cached solve.
struct CacheEntry {
  obs::JsonValue result;
  obs::JsonValue health;
  double solve_wall_ms = 0.0;  ///< what the original solve cost (telemetry)
};

/// What SolutionCache::lookup() decided for a request.
struct Lookup {
  enum class Outcome {
    kHit,      ///< `entry` holds the finished payload
    kJoined,   ///< an identical request is in flight; wait on `flight`
    kLeader,   ///< this request must execute; complete `flight` when done
  };
  Outcome outcome;
  CacheEntry entry;                ///< kHit only
  std::shared_ptr<Flight> flight;  ///< kJoined / kLeader
};

/// Thread-safe LRU memo cache + single-flight table. Metrics (optional):
/// server.cache.hit / .miss / .coalesced / .evicted / .insert counters and
/// the server.cache.size gauge.
class SolutionCache {
 public:
  explicit SolutionCache(std::size_t capacity, obs::MetricsRegistry* metrics = nullptr)
      : capacity_(capacity), metrics_(metrics) {}

  /// The single atomic decision point: hit, join, or lead (creating the
  /// flight under the lock so a herd can never race into N leaders). When a
  /// flight is created it carries `deadline` — the leader's own budget, which
  /// bounds how long the watchdog lets the execution fly.
  Lookup lookup(std::uint64_t hash, const std::string& key,
                std::chrono::steady_clock::time_point deadline = {});

  /// Read-only probe: returns the cached entry (touching LRU) or nullopt.
  /// Never creates a flight — sweep points use this so a sweep worker can
  /// never block on a flight queued behind the sweep itself.
  std::optional<CacheEntry> peek(std::uint64_t hash);

  /// Caches a successful outcome and retires the flight. Failures retire the
  /// flight only (errors are never served from cache; the circuit breaker
  /// owns repeated-failure behaviour).
  void finish(std::uint64_t hash, const std::shared_ptr<Flight>& flight,
              bool cache_result);

  /// Warm-start: seeds one entry without a flight (journal replay on boot).
  void seed(std::uint64_t hash, CacheEntry entry);

  /// Snapshot of every in-flight flight, for the watchdog scan and the drain
  /// path's force-complete.
  std::vector<std::shared_ptr<Flight>> inflight() const;

  std::size_t size() const;
  std::size_t inflight_count() const;

 private:
  void insert_locked(std::uint64_t hash, CacheEntry entry);

  std::size_t capacity_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  struct Slot {
    CacheEntry entry;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::unordered_map<std::uint64_t, Slot> entries_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;
};

}  // namespace perfbg::server
