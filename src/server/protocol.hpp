// perfbgd wire protocol (DESIGN.md §13): newline-delimited JSON frames over a
// local stream socket, one request object per line, one response object per
// line, answered in request order per connection.
//
// Request (schema implied by the daemon's socket):
//   {"id": "planner-7/42",          // echoed verbatim; "" when absent
//    "kind": "solve",               // solve|sweep|healthz|metricsz|tracez|statusz
//    "trace_id": "1a2b3c",          // optional request trace id, 1..16 hex digits
//    "workload": "email",           // email|softdev|useraccounts|lowacf|ipp|poisson
//    "util": 0.15,                  // foreground utilization, (0, ...) — a
//                                   // value >= 1 is diagnosed kUnstableQbd
//    "p": 0.3, "buffer": 5, "idle_wait": 1.0,
//    "service": "expo",             // expo|erlang2|erlang4|h2
//    "service_mean": 6.0,
//    "utils": [0.1, 0.2],           // sweep only: one solve per entry
//    "deadline_ms": 2000}           // per-request budget; 0 = server default
//
// Response (schema perfbg.response.v1):
//   {"schema": "perfbg.response.v1", "id": "...", "ok": true,
//    "cached": false, "coalesced": false, "wall_ms": 1.9,
//    "trace_id": "00000000001a2b3c",   // echoed/assigned trace id (16 hex digits)
//    "trace_leader": "...",            // coalesced only: the leader's trace id
//    "result": {"fg_queue_length": ..., ...}, "health": {...}}
//   {"schema": "perfbg.response.v1", "id": "...", "ok": false,
//    "error": {"code": "kOverloaded", "message": "..."}}
//
// The request's *canonical key* — resolved defaults rendered in a fixed field
// order — is the daemon's cache and single-flight identity; its FNV-1a 64
// hash is the same inputs-hash convention the sweep journal uses, so a served
// request journaled by the daemon is resumable/warm-loadable by hash.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "obs/json.hpp"

namespace perfbg::server {

inline constexpr const char* kResponseSchema = "perfbg.response.v1";

struct Request {
  enum class Kind { kSolve, kSweep, kHealthz, kMetricsz, kTracez, kStatusz };

  Kind kind = Kind::kSolve;
  std::string id;  ///< opaque client tag, echoed in the response

  /// Request-scoped trace id (wire form: 1..16 hex digits in a "trace_id"
  /// string field). 0 = the client sent none; the daemon then assigns one.
  /// Echoed as "trace_id" in the response either way, so a client can join
  /// its own latency records to the daemon's journal, flight recorder, and
  /// tracez output.
  std::uint64_t trace_id = 0;

  // Model coordinates (defaults match perfbg_cli).
  std::string workload = "email";
  std::string service = "expo";
  double util = 0.15;
  double p = 0.3;
  int buffer = 5;
  double idle_wait = 1.0;
  double service_mean = 6.0;
  std::vector<double> utils;  ///< sweep points (kSweep only, non-empty)

  double deadline_ms = 0.0;  ///< 0 = use the daemon's default deadline

  // Test hooks, parsed only when the daemon runs with test hooks enabled
  // (tests and the chaos loadgen): a cancellable artificial solve delay, an
  // uncancellable ("wedged") delay for watchdog coverage, and a forced typed
  // failure for breaker coverage.
  double test_sleep_ms = 0.0;
  double test_wedge_ms = 0.0;
  std::string test_fail_code;

  bool is_control() const {
    return kind == Kind::kHealthz || kind == Kind::kMetricsz ||
           kind == Kind::kTracez || kind == Kind::kStatusz;
  }
};

/// Parses one request frame. Throws perfbg::Error{kInvalidModel} on an
/// unknown kind/workload/service, a wrong-typed field, or out-of-domain
/// values — the caller answers with a typed error response and keeps the
/// connection. `allow_test_hooks` gates the test_* fields (ignored otherwise).
Request parse_request(const obs::JsonValue& frame, bool allow_test_hooks);

/// Canonical cache/single-flight identity: every model field rendered with
/// resolved defaults in a fixed order, e.g.
/// "email|svc=expo|mean=6|u=0.15|p=0.3|X=5|iw=1". Sweep requests append
/// "|sweep=u1,u2,...". Control requests have no key (empty string).
std::string canonical_key(const Request& request);

/// Circuit-breaker granularity: the model *class* (workload, service shape,
/// buffer size) without the load point, so repeated numerical failures of one
/// configuration trip the breaker for its whole family while other workloads
/// keep solving.
std::string model_class(const Request& request);

/// Builds the solver parameters for `request` at foreground utilization `u`.
/// Throws perfbg::Error{kInvalidModel} on an unknown workload/service name.
core::FgBgParams build_params(const Request& request, double u);

/// One solved point rendered for the wire: the six FG/BG metrics perfbg_cli
/// tabulates.
obs::JsonValue metrics_payload(const core::FgBgMetrics& m);

/// Success envelope. `result` is the solve payload (or sweep point array).
obs::JsonValue make_result_response(const std::string& id, obs::JsonValue result,
                                    obs::JsonValue health, bool cached,
                                    bool coalesced, double wall_ms);

/// Error envelope for a typed failure.
obs::JsonValue make_error_response(const std::string& id, const std::string& code,
                                   const std::string& message);

/// Stamps the trace linkage onto a response envelope: "trace_id" (16 hex
/// digits) when `trace_id` is nonzero, plus "trace_leader" when this response
/// was coalesced onto another request's flight (`leader_trace_id` nonzero and
/// different from `trace_id`).
void stamp_trace(obs::JsonValue& response, std::uint64_t trace_id,
                 std::uint64_t leader_trace_id = 0);

}  // namespace perfbg::server
