#include "server/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "core/model.hpp"
#include "qbd/rmatrix.hpp"
#include "runner/sweep_runner.hpp"
#include "server/io.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/table.hpp"

namespace perfbg::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start, Clock::time_point end = Clock::now()) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Maps a test_fail_code hook name back to the taxonomy. Throws kInvalidModel
/// on an unknown name so a typo in a test is a typed response, not a solve.
ErrorCode code_from_name(const std::string& name) {
  static const std::pair<const char*, ErrorCode> kCodes[] = {
      {"kInvalidModel", ErrorCode::kInvalidModel},
      {"kUnstableQbd", ErrorCode::kUnstableQbd},
      {"kSingularMatrix", ErrorCode::kSingularMatrix},
      {"kNonConvergence", ErrorCode::kNonConvergence},
      {"kNumericalBreakdown", ErrorCode::kNumericalBreakdown},
      {"kDeadlineExceeded", ErrorCode::kDeadlineExceeded},
      {"kInterrupted", ErrorCode::kInterrupted},
  };
  for (const auto& [n, code] : kCodes)
    if (name == n) return code;
  throw Error(ErrorCode::kInvalidModel, "unknown test_fail_code '" + name + "'");
}

/// R-seed identity: everything that shapes the repeating blocks A0/A1/A2
/// except the load axis. idle_wait is deliberately excluded — it only
/// reshapes the boundary blocks, which the R iteration never sees.
std::string r_seed_class(const Request& req) {
  return model_class(req) + "|mean=" + format_number(req.service_mean, 6) +
         "|p=" + format_number(req.p, 6);
}

}  // namespace

Daemon::Daemon(DaemonOptions options, obs::RunReport& report)
    : options_(std::move(options)),
      report_(report),
      metrics_(report.metrics()),
      cache_(options_.cache_capacity, &metrics_),
      breaker_(options_.breaker_threshold, options_.breaker_cooldown_ms, &metrics_),
      recorder_(options_.recorder_capacity),
      slow_log_(options_.slow_log_capacity) {}

Daemon::~Daemon() {
  if (started_.load(std::memory_order_acquire)) {
    force_drain();
    run();  // idempotent: every join is guarded by joinable()
  }
}

void Daemon::start() {
  // Pre-register the whole service counter family at zero: every run-report
  // snapshot and /metricsz scrape then exposes the same stable set whether or
  // not a counter fired this life, so two daemon runs stay diffable with
  // perfbg_report_diff and Prometheus rate() works from the first increment.
  for (const char* name :
       {"server.requests.total", "server.requests.ok", "server.requests.error",
        "server.requests.malformed", "server.requests.oversized",
        "server.conn.accepted", "server.conn.shed", "server.conn.write_failed",
        "server.cache.hit", "server.cache.miss", "server.cache.coalesced",
        "server.cache.insert", "server.cache.evicted", "server.cache.warm",
        "server.queue.shed", "server.queue.stale", "server.solve.executed",
        "server.solve.late_result", "server.wait.deadline",
        "server.watchdog.evicted", "server.breaker.trips",
        "server.breaker.recovered", "server.breaker.probes",
        "server.breaker.fastfail", "server.journal.records",
        "server.drain.begun", "server.drain.forced", "server.trace.requests",
        "server.trace.generated", "server.trace.client_supplied",
        "server.recorder.records", "server.recorder.dumps",
        "server.recorder.dump_failed", "server.recorder.dropped",
        "server.cache.insert_failed", "server.journal.write_failed"})
    metrics_.add(name, 0);
  // End-to-end request latency (accept to response ready), with trace-id
  // exemplars on the buckets so a tail spike links to a concrete trace.
  metrics_.define_histogram("server.request.wall_ms", obs::log_buckets(1e-2, 1e5, 10));

  started_at_ = Clock::now();
  // Per-process trace-id seed: wall-clock entropy mixed with this object's
  // address, so two daemon lives never mint overlapping generated ids.
  trace_seed_ = static_cast<std::uint64_t>(
                    std::chrono::system_clock::now().time_since_epoch().count()) ^
                (reinterpret_cast<std::uintptr_t>(this) << 16);

  if (options_.warm_start) {
    for (const auto& [hash_hex, record] : options_.warm_start->records()) {
      if (!record.ok()) continue;
      cache_.seed(runner::fnv1a64(record.key),
                  CacheEntry{record.payload, obs::JsonValue(), record.wall_ms});
      metrics_.add("server.cache.warm");
    }
  }

  listener_ = std::make_unique<Listener>(options_.socket_path);
  started_.store(true, std::memory_order_release);

  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back(&Daemon::worker_loop, this);
  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  watchdog_thread_ = std::thread(&Daemon::watchdog_loop, this);
}

// ---------------------------------------------------------------------------
// Accept + connection path

void Daemon::accept_loop() {
  while (true) {
    Socket sock = listener_->accept();
    if (!sock.valid()) break;  // listener shut down: drain
    metrics_.add("server.conn.accepted");

    if (draining()) {
      write_line(sock.fd(),
                 make_error_response("", "kOverloaded",
                                     "daemon is draining; not accepting new connections")
                     .dump(),
                 options_.write_timeout_ms);
      continue;  // RAII closes
    }

    std::shared_ptr<ConnState> state;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      // Re-check under conn_mu_: begin_drain() holds it while sweeping the
      // registry, so a connection registered here is either swept or refused.
      if (draining()) {
        write_line(sock.fd(),
                   make_error_response("", "kOverloaded",
                                       "daemon is draining; not accepting new connections")
                       .dump(),
                   options_.write_timeout_ms);
        continue;
      }
      if (active_connections_ >= static_cast<std::size_t>(std::max(1, options_.max_connections))) {
        metrics_.add("server.conn.shed");
        write_line(sock.fd(),
                   make_error_response(
                       "", "kOverloaded",
                       "connection limit reached (" +
                           std::to_string(options_.max_connections) +
                           "); retry against a less loaded server")
                       .dump(),
                   options_.write_timeout_ms);
        continue;
      }
      state = std::make_shared<ConnState>();
      state->socket = std::move(sock);
      ++active_connections_;
      metrics_.set("server.conn.active", static_cast<double>(active_connections_));
      connections_.push_back(
          ConnEntry{std::thread(&Daemon::serve_connection, this, state), state});
    }
  }
}

void Daemon::serve_connection(std::shared_ptr<ConnState> conn) {
  conn->socket.set_send_timeout_ms(
      std::max(1, static_cast<int>(options_.write_timeout_ms)));
  LineReader reader(conn->socket.fd(), options_.max_frame_bytes);
  std::string line;
  while (true) {
    const LineReader::Status status = reader.next(line);
    if (status == LineReader::Status::kLine) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (!handle_frame(*conn, line)) break;
      continue;
    }
    if (status == LineReader::Status::kTooLong) {
      // The stream cannot resync after an oversized frame: answer + drop.
      metrics_.add("server.requests.oversized");
      write_line(conn->socket.fd(),
                 make_error_response("", "kInvalidModel",
                                     "frame exceeds " +
                                         std::to_string(options_.max_frame_bytes) +
                                         " bytes")
                     .dump(),
                 options_.write_timeout_ms);
    }
    break;  // kEof / kError / kTooLong
  }

  conn->done.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --active_connections_;
    metrics_.set("server.conn.active", static_cast<double>(active_connections_));
  }
  conn_cv_.notify_all();
  state_cv_.notify_all();
}

bool Daemon::handle_frame(ConnState& conn, const std::string& line) {
  metrics_.add("server.requests.total");
  const Clock::time_point start = Clock::now();
  obs::JsonValue response;
  std::string id;
  std::uint64_t trace_id = 0;  ///< nonzero once a non-control request parsed
  RequestTelemetry tel;
  try {
    obs::JsonValue frame;
    try {
      frame = obs::parse_json(line, obs::JsonLimits{options_.max_frame_bytes, 64});
    } catch (const std::invalid_argument& e) {
      metrics_.add("server.requests.malformed");
      throw Error(ErrorCode::kInvalidModel, std::string("malformed frame: ") + e.what());
    }
    // Capture the id before full validation so even a bad request's error
    // response is attributable by the client.
    if (frame.is_object()) {
      if (const obs::JsonValue* v = frame.find("id"); v && v->is_string())
        id = v->as_string();
    }
    Request request = parse_request(frame, options_.enable_test_hooks);
    if (request.is_control()) {
      response = process_request(request, obs::TraceContext{}, tel);
    } else {
      // Every solve/sweep request is traced: the client's trace id or a fresh
      // one, shared by the response echo, the request span tree, the journal
      // line, the flight recorder entry, and the latency-bucket exemplar.
      metrics_.add("server.trace.requests");
      if (request.trace_id != 0) {
        metrics_.add("server.trace.client_supplied");
      } else {
        request.trace_id = next_trace_id();
        metrics_.add("server.trace.generated");
      }
      trace_id = request.trace_id;
      obs::ScopedSpan span("server.request", obs::TraceContext{trace_id, -1});
      obs::TraceContext ctx = span.context();
      ctx.trace_id = trace_id;  // keep the linkage even with no collector
      response = process_request(request, ctx, tel);
      // Attributes attach at span end; tel.key is the canonical key
      // process_request computed anyway, so the hot path never re-derives it.
      if (span.active()) {
        span.attr("key", obs::JsonValue(tel.key));
        if (!request.id.empty()) span.attr("id", obs::JsonValue(request.id));
      }
    }
  } catch (const Error& e) {
    response = make_error_response(id, error_code_name(e.code()), e.message());
  } catch (const std::exception& e) {
    response = make_error_response(id, "kUnclassified", e.what());
  }

  bool ok = false;
  if (const obs::JsonValue* v = response.find("ok"); v && v->is_bool() && v->as_bool())
    ok = true;
  metrics_.add(ok ? "server.requests.ok" : "server.requests.error");

  if (trace_id != 0) {
    const double wall = ms_since(start);
    stamp_trace(response, trace_id, tel.leader_trace);
    metrics_.observe("server.request.wall_ms", wall, obs::trace_id_hex(trace_id));

    obs::RequestTrace trace;
    trace.trace_id = trace_id;
    trace.leader_trace_id = tel.leader_trace;
    trace.id = id;
    trace.key = tel.key;
    trace.model_class = tel.model_class;
    trace.queue_ms = tel.queue_ms;
    trace.wall_ms = wall;
    trace.health = tel.health;
    if (ok) {
      const obs::JsonValue* cached = response.find("cached");
      const obs::JsonValue* coalesced = response.find("coalesced");
      trace.outcome = cached && cached->is_bool() && cached->as_bool() ? "cached"
                      : coalesced && coalesced->is_bool() && coalesced->as_bool()
                          ? "coalesced"
                          : "ok";
    } else {
      trace.outcome = "error";
      if (const obs::JsonValue* err = response.find("error"))
        if (const obs::JsonValue* code = err->find("code"); code && code->is_string())
          trace.outcome = code->as_string();
    }
    // Coarse phase tree mirroring the span nesting, so tracez shows where the
    // time went even without a span collector installed. Cache hits never
    // queued or solved, so their entry carries just wall_ms — skipping the
    // tree keeps the hot path free of its allocations.
    if (tel.queue_ms >= 0.0 || tel.solve_ms >= 0.0) {
      obs::JsonValue phases = obs::JsonValue::object();
      phases.set("name", obs::JsonValue("server.request"));
      phases.set("ms", obs::JsonValue(wall));
      obs::JsonValue children = obs::JsonValue::array();
      if (tel.queue_ms >= 0.0) {
        obs::JsonValue c = obs::JsonValue::object();
        c.set("name", obs::JsonValue("server.queue"));
        c.set("ms", obs::JsonValue(tel.queue_ms));
        children.push_back(std::move(c));
      }
      if (tel.solve_ms >= 0.0) {
        obs::JsonValue c = obs::JsonValue::object();
        c.set("name", obs::JsonValue("server.solve"));
        c.set("ms", obs::JsonValue(tel.solve_ms));
        children.push_back(std::move(c));
      }
      phases.set("children", std::move(children));
      trace.phases = std::move(phases);
    }
    record_request(std::move(trace));
  }

  if (!write_line(conn.socket.fd(), response.dump(), options_.write_timeout_ms)) {
    metrics_.add("server.conn.write_failed");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Request path

obs::JsonValue Daemon::process_request(const Request& request,
                                       const obs::TraceContext& ctx,
                                       RequestTelemetry& tel) {
  if (request.kind == Request::Kind::kHealthz)
    return make_result_response(request.id, healthz(), obs::JsonValue(), false, false, 0.0);
  if (request.kind == Request::Kind::kMetricsz) {
    obs::JsonValue body = obs::JsonValue::object();
    body.set("text", metrics_.render_text());
    return make_result_response(request.id, std::move(body), obs::JsonValue(), false,
                                false, 0.0);
  }
  if (request.kind == Request::Kind::kTracez)
    return make_result_response(request.id, tracez(), obs::JsonValue(), false, false, 0.0);
  if (request.kind == Request::Kind::kStatusz)
    return make_result_response(request.id, statusz(), obs::JsonValue(), false, false, 0.0);

  if (draining())
    return make_error_response(request.id, "kOverloaded",
                               "daemon is draining; request rejected");

  const std::string key = canonical_key(request);
  const std::uint64_t hash = runner::fnv1a64(key);
  const std::string cls = model_class(request);
  tel.key = key;
  tel.model_class = cls;

  const BreakerDecision decision = breaker_.admit(cls);
  if (!decision.allow) {
    std::string msg = "circuit open for model class '" + cls + "'";
    if (!decision.last_error.empty()) msg += "; last error: " + decision.last_error;
    msg += " (retry after " + std::to_string(static_cast<long>(decision.retry_after_ms)) +
           " ms)";
    return make_error_response(request.id, "kCircuitOpen", msg);
  }

  const double budget_ms =
      request.deadline_ms > 0.0 ? request.deadline_ms : options_.default_deadline_ms;
  Clock::time_point own_deadline{};
  if (budget_ms > 0.0)
    own_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(budget_ms));

  Lookup lookup = cache_.lookup(hash, key, own_deadline);
  if (lookup.outcome == Lookup::Outcome::kHit) {
    // A cache hit is a known-good solve of this class: let it close a
    // half-open breaker instead of burning the probe slot on a re-execution.
    if (decision.probe) breaker_.report(cls, "", "", true);
    return make_result_response(request.id, lookup.entry.result, lookup.entry.health,
                                true, false, lookup.entry.solve_wall_ms);
  }

  const bool coalesced = lookup.outcome == Lookup::Outcome::kJoined;
  if (!coalesced) {
    // Leader: publish the trace linkage on the flight before it can complete,
    // so joiners, the watchdog, and the journal all see it.
    lookup.flight->set_trace(request.trace_id, ctx.parent_span, cls);
    // The one queue-slot occupant for this key. Admission control happens
    // here — a full queue is a typed kOverloaded in microseconds.
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!stop_workers_ && queue_.size() < std::max<std::size_t>(1, options_.max_queue)) {
        queue_.push_back(WorkItem{hash, request, lookup.flight, ctx, decision.probe});
        metrics_.set("server.queue.depth", static_cast<double>(queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      metrics_.add("server.queue.shed");
      const std::string msg = "work queue full (" + std::to_string(options_.max_queue) +
                              " pending solves); request shed";
      // Breaker first (a shed probe re-opens its class), then complete the
      // flight so any herd members that coalesced onto this key in the window
      // since lookup() wake with the same typed answer.
      breaker_.report(cls, "kOverloaded", msg, decision.probe);
      lookup.flight->complete(obs::JsonValue(), obs::JsonValue(), "kOverloaded", msg, 0.0);
      cache_.finish(hash, lookup.flight, false);
      // A burst of sheds is exactly the moment a postmortem needs the
      // recorder: capture the lead-up once per burst, rate-limited.
      if (sheds_since_dump_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          options_.overload_burst_threshold)
        dump_recorder("overload_burst", false);
      return make_error_response(request.id, "kOverloaded", msg);
    }
  }

  return finish_via_flight(request, lookup.flight, own_deadline, coalesced,
                           decision.probe, tel);
}

obs::JsonValue Daemon::finish_via_flight(const Request& request,
                                         const std::shared_ptr<Flight>& flight,
                                         Clock::time_point own_deadline, bool coalesced,
                                         bool probe, RequestTelemetry& tel) {
  if (coalesced) tel.leader_trace = flight->trace_id();
  if (!flight->wait_done(own_deadline)) {
    // This waiter's own budget ran out; the flight keeps flying for others.
    metrics_.add("server.wait.deadline");
    return make_error_response(request.id, "kDeadlineExceeded",
                               "request deadline passed while waiting for the "
                               "in-flight identical solve");
  }
  if (probe && coalesced) {
    // A joined probe never executes; report the shared outcome so the class
    // cannot wedge in half-open.
    breaker_.report(model_class(request), flight->error_code(), flight->error_message(),
                    true);
  }
  tel.queue_ms = flight->queue_ms();
  tel.solve_ms = flight->wall_ms();
  tel.health = flight->health();
  if (flight->ok())
    return make_result_response(request.id, flight->result(), flight->health(), false,
                                coalesced, flight->wall_ms());
  return make_error_response(request.id, flight->error_code(), flight->error_message());
}

// ---------------------------------------------------------------------------
// Worker path

void Daemon::worker_loop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      metrics_.set("server.queue.depth", static_cast<double>(queue_.size()));
    }
    execute(item);
    state_cv_.notify_all();
  }
}

void Daemon::execute(WorkItem& item) {
  if (item.flight->done()) {
    // Evicted by the watchdog or failed by the drain path while still queued:
    // every waiter already has its answer, so skip the execution entirely.
    metrics_.add("server.queue.stale");
    cache_.finish(item.hash, item.flight, false);
    return;
  }

  CancellationToken& token = item.flight->token();
  if (item.flight->deadline != Clock::time_point{})
    token.set_deadline(item.flight->deadline);

  // Queue age: flight creation (= admission) to this dequeue. Stored on the
  // flight so the leader's connection thread can report it after wait_done.
  const double queue_ms = ms_since(item.flight->created);
  item.flight->set_queue_ms(queue_ms);

  metrics_.add("server.solve.executed");
  obs::ScopedTimer timer(&metrics_, "server.solve");
  // The worker span parents under the request span via the explicit
  // cross-thread link, so the exported trace is one connected tree:
  // server.request -> server.worker -> qbd.solve.* (thread-local nesting
  // carries the linkage the rest of the way down).
  obs::ScopedSpan wspan("server.worker", item.trace);
  if (wspan.active()) {
    wspan.attr("key", obs::JsonValue(item.flight->key()));
    wspan.attr("queue_ms", obs::JsonValue(queue_ms));
  }
  const Clock::time_point start = Clock::now();

  obs::JsonValue result;
  obs::JsonValue health;
  bool cache_ok = true;
  std::string code;
  std::string message;
  obs::TraceContext solve_ctx = wspan.context();
  solve_ctx.trace_id = item.trace.trace_id;
  // Chaos seams: a scheduler-stall stand-in (the worker holds its queue slot
  // while time passes, so deadlines and the watchdog see a slow solve) and a
  // hard abort (the solve dies outside the solver's own taxonomy).
  if (const std::int64_t stall = failpoint("server.worker.stall_ms"); stall > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(stall));
  try {
    if (failpoint("server.worker.abort") != 0)
      throw Error(ErrorCode::kInterrupted,
                  "solve aborted by injected worker fault (server.worker.abort)");
    result = run_model(item.request, token, solve_ctx, health, cache_ok);
  } catch (const Error& e) {
    code = error_code_name(e.code());
    message = e.message();
  } catch (const std::exception& e) {
    code = "kUnclassified";
    message = e.what();
  }
  const double wall = ms_since(start);

  if (!code.empty()) {
    obs::SolveHealth h = obs::failed_solve_health(code, message);
    h.key = item.flight->key();
    report_.add_health(h);
    obs::JsonValue err = obs::JsonValue::object();
    err.set("code", code);
    err.set("message", message);
    err.set("key", item.flight->key());
    report_.add_error(std::move(err));
  }

  // Publish the cache entry, the journal record, and the breaker outcome
  // BEFORE completing the flight: complete() wakes the waiters, and a client
  // that reacts instantly to its response must read its own write — the
  // follow-up identical request hits the cache, and a probe's class is
  // already closed (or re-tripped), never observed stale. Seeding directly
  // (instead of letting finish() read the flight) also means a valid result
  // the watchdog already evicted still lands in the cache: it is correct,
  // just slow.
  //
  // The journal in particular MUST land (fsync'd) before complete(): a
  // response sent to a client is an acknowledgement, and an ack that a
  // SIGKILL one instruction later could erase from the journal breaks the
  // crash-recovery contract the chaos soak asserts.
  if (code.empty() && cache_ok)
    cache_.seed(item.hash, CacheEntry{result, health, wall});
  journal_outcome(item.flight->key(), result, code, message, wall,
                  item.trace.trace_id);
  breaker_.report(model_class(item.request), code, message, item.probe);
  // First completion wins: if the watchdog already evicted this flight the
  // waiters keep their deadline answer.
  if (!item.flight->complete(result, health, code, message, wall))
    metrics_.add("server.solve.late_result");
  cache_.finish(item.hash, item.flight, false);  // retire the flight only
}

obs::JsonValue Daemon::run_model(const Request& request, const CancellationToken& token,
                                 const obs::TraceContext& ctx,
                                 obs::JsonValue& health_out, bool& cache_ok) {
  // Test hooks (gated by --enable-test-hooks): deterministic stand-ins for a
  // slow solve, a wedged solve, and a typed solver failure.
  if (!request.test_fail_code.empty())
    throw Error(code_from_name(request.test_fail_code),
                "test hook forced failure (" + request.test_fail_code + ")");
  if (request.test_wedge_ms > 0.0) {
    // Deliberately ignores the token: watchdog-eviction coverage.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(request.test_wedge_ms));
  }
  if (request.test_sleep_ms > 0.0) {
    const Clock::time_point until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(request.test_sleep_ms));
    while (Clock::now() < until) {
      token.check();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (request.kind == Request::Kind::kSolve) {
    core::FgBgModel model(build_params(request, request.util), &metrics_);
    qbd::RSolverOptions opts;
    opts.cancel = &token;
    std::string seed_class;
    if (options_.warm_start_r) {
      seed_class = r_seed_class(request);
      opts.warm_start = r_seeds_.get(seed_class);
    }
    const core::FgBgSolution solution = model.solve(opts);
    if (options_.warm_start_r)
      r_seeds_.put(seed_class, solution.qbd().r_matrix(),
                   solution.qbd().solver_stats().iterations);
    obs::SolveHealth h = solution.health();
    h.key = canonical_key(request);
    report_.add_health(h);
    health_out = h.to_json();
    return metrics_payload(solution.metrics());
  }

  // Sweep: one solve per utilization on a SweepRunner pool. Points reuse the
  // daemon cache read-only via peek() (never joining flights, so a sweep can
  // never deadlock behind itself in the worker pool) and seed it on success.
  runner::RunnerOptions ro;
  ro.jobs = std::max(1, options_.sweep_jobs);
  ro.metrics = &metrics_;
  runner::SweepRunner sweep(ro);
  for (double u : request.utils) {
    Request point = request;
    point.kind = Request::Kind::kSolve;
    point.util = u;
    point.utils.clear();
    const std::string pkey = canonical_key(point);
    const std::uint64_t phash = runner::fnv1a64(pkey);
    sweep.add(pkey, [this, point, pkey, phash, ctx, &token](runner::PointContext&) {
      // SweepRunner executes this on its own pool thread: link the point span
      // back to the worker span explicitly, or the trace tree would fork.
      obs::ScopedSpan pspan("server.sweep.point", ctx);
      if (pspan.active()) pspan.attr("key", obs::JsonValue(pkey));
      if (std::optional<CacheEntry> hit = cache_.peek(phash)) return hit->result;
      token.check();
      core::FgBgModel model(build_params(point, point.util), &metrics_);
      qbd::RSolverOptions opts;
      opts.cancel = &token;
      std::string seed_class;
      if (options_.warm_start_r) {
        seed_class = r_seed_class(point);
        opts.warm_start = r_seeds_.get(seed_class);
      }
      const core::FgBgSolution solution = model.solve(opts);
      if (options_.warm_start_r)
        r_seeds_.put(seed_class, solution.qbd().r_matrix(),
                     solution.qbd().solver_stats().iterations);
      obs::SolveHealth h = solution.health();
      h.key = pkey;
      report_.add_health(h);
      obs::JsonValue payload = metrics_payload(solution.metrics());
      cache_.seed(phash, CacheEntry{payload, h.to_json(), 0.0});
      return payload;
    });
  }
  const runner::SweepResult sr = sweep.run();

  obs::JsonValue points = obs::JsonValue::array();
  for (std::size_t i = 0; i < sr.outcomes.size(); ++i) {
    const runner::PointOutcome& outcome = sr.outcomes[i];
    obs::JsonValue row = obs::JsonValue::object();
    row.set("util", request.utils[i]);
    row.set("ok", outcome.ok());
    if (outcome.ok()) {
      row.set("result", outcome.payload);
    } else {
      cache_ok = false;  // never memoize a sweep with failed points
      obs::JsonValue err = obs::JsonValue::object();
      err.set("code", outcome.error_code.empty() ? "kInterrupted" : outcome.error_code);
      err.set("message", outcome.error_message);
      row.set("error", std::move(err));
    }
    points.push_back(std::move(row));
  }
  obs::JsonValue body = obs::JsonValue::object();
  body.set("points", std::move(points));
  body.set("failed", static_cast<std::int64_t>(sr.failed));
  health_out = obs::JsonValue();
  return body;
}

void Daemon::journal_outcome(const std::string& key, const obs::JsonValue& result,
                             const std::string& code, const std::string& message,
                             double wall_ms, std::uint64_t trace_id) {
  if (!options_.journal) return;
  runner::JournalRecord record;
  record.key = key;
  record.payload = code.empty() ? result : obs::JsonValue();
  record.error_code = code;
  record.error_message = message;
  record.wall_ms = wall_ms;
  if (trace_id != 0) record.trace = obs::trace_id_hex(trace_id);
  try {
    options_.journal->append(record);
    metrics_.add("server.journal.records");
  } catch (const std::exception&) {
    // A journal write failure (disk, or the runner.journal.append failpoint)
    // must degrade the *journal*, not kill a worker thread via an unwound
    // std::terminate. The request is still answered; the record is the loss.
    metrics_.add("server.journal.write_failed");
  }
}

// ---------------------------------------------------------------------------
// Watchdog + drain

void Daemon::watchdog_loop() {
  Clock::time_point last_snapshot = Clock::now();
  while (!stop_watchdog_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::max(1.0, options_.watchdog_interval_ms)));

    const int level = runner::interrupt_level();
    if (level >= 2)
      force_drain();
    else if (level >= 1)
      begin_drain();

    // Chaos seam: a clock jump ages every armed deadline at once. The tick's
    // `now` reads chaos_now(), so eviction decisions (and the evicted
    // flights' reported ages) follow the jumped clock.
    if (const std::int64_t jump = failpoint("server.watchdog.clock_jump_ms");
        jump != 0)
      add_clock_skew_ms(static_cast<double>(jump));

    const Clock::time_point now = chaos_now();
    const auto grace = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(options_.watchdog_grace_ms));
    for (const std::shared_ptr<Flight>& flight : cache_.inflight()) {
      if (flight->deadline == Clock::time_point{} || now < flight->deadline) continue;
      // Past deadline: ask nicely first (cooperative cancel unwinds the solve
      // at its next iteration)...
      flight->token().cancel(CancelReason::kDeadline);
      // ...and past deadline + grace, stop waiting for a solve that is wedged
      // outside any cancellation point: answer the waiters now. The worker's
      // eventual return is a recorded late result, not a lost thread.
      if (now >= flight->deadline + grace) {
        if (flight->complete(obs::JsonValue(), obs::JsonValue(), "kDeadlineExceeded",
                             "solve exceeded its deadline and was evicted by the "
                             "watchdog",
                             ms_since(flight->created, now))) {
          metrics_.add("server.watchdog.evicted");
          // An eviction is the recorder's marquee customer: record the
          // stranded flight under its own trace id and capture a dump while
          // the surrounding requests are still in the ring.
          obs::RequestTrace trace;
          trace.trace_id = flight->trace_id();
          trace.key = flight->key();
          trace.model_class = flight->model_class();
          trace.outcome = "evicted";
          trace.queue_ms = flight->queue_ms();
          trace.wall_ms = ms_since(flight->created, now);
          record_request(std::move(trace));
          dump_recorder("watchdog_eviction", false);
        }
      }
    }

    reap_finished_connections(false);

    if (!options_.report_path.empty() && options_.report_interval_ms > 0.0 &&
        ms_since(last_snapshot, now) >= options_.report_interval_ms) {
      write_report_snapshot();
      last_snapshot = now;
    }
  }
}

void Daemon::begin_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  metrics_.add("server.drain.begun");
  if (listener_) listener_->shutdown();
  {
    // Stop every connection from submitting further requests while keeping
    // its write side open for the responses it is still owed.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (ConnEntry& entry : connections_)
      if (!entry.state->done.load(std::memory_order_acquire))
        entry.state->socket.shutdown_read();
  }
  state_cv_.notify_all();
}

void Daemon::force_drain() {
  begin_drain();
  bool expected = false;
  if (!forced_.compare_exchange_strong(expected, true)) return;
  metrics_.add("server.drain.forced");

  // Fail the work that never started...
  std::deque<WorkItem> pending;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending.swap(queue_);
    metrics_.set("server.queue.depth", 0.0);
  }
  for (WorkItem& item : pending) {
    item.flight->complete(obs::JsonValue(), obs::JsonValue(), "kInterrupted",
                          "daemon force-drained before this request started", 0.0);
    cache_.finish(item.hash, item.flight, false);
  }
  // ...and cancel what did: waiters get kInterrupted now; the executing
  // worker unwinds at its next cancellation point.
  for (const std::shared_ptr<Flight>& flight : cache_.inflight()) {
    flight->token().cancel(CancelReason::kInterrupt);
    flight->complete(obs::JsonValue(), obs::JsonValue(), "kInterrupted",
                     "daemon force-drained; in-flight solve cancelled", 0.0);
  }
  queue_cv_.notify_all();
  state_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Lifecycle

int Daemon::run() {
  // Phase 1: serve until a drain is requested (signal via watchdog, or
  // begin_drain()/force_drain() from another thread).
  while (!draining()) {
    std::unique_lock<std::mutex> lock(state_mu_);
    state_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Phase 2: every connection finishes its in-flight request and exits (the
  // drain shut their read sides, so readers see EOF as soon as they idle).
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    while (active_connections_ > 0)
      conn_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  reap_finished_connections(true);

  // Phase 3: the queue drains (no producers remain) and the last flights
  // land. A force-drain already answered the waiters; this wait is for the
  // worker threads to come back from their cancelled solves.
  while (true) {
    bool queue_empty;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_empty = queue_.empty();
    }
    if (queue_empty && cache_.inflight_count() == 0) break;
    std::unique_lock<std::mutex> lock(state_mu_);
    state_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();

  stop_watchdog_.store(true, std::memory_order_release);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  listener_.reset();  // unlink the socket path
  dump_recorder("drain", true);
  write_report_snapshot();
  return forced_.load(std::memory_order_acquire)
             ? error_exit_code(ErrorCode::kInterrupted)
             : 0;
}

void Daemon::reap_finished_connections(bool join_all) {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (join_all || it->state->done.load(std::memory_order_acquire)) {
        to_join.push_back(std::move(it->thread));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : to_join)
    if (t.joinable()) t.join();
}

void Daemon::write_report_snapshot() {
  if (options_.report_path.empty()) return;
  try {
    report_.write_json(options_.report_path);
  } catch (const std::exception&) {
    metrics_.add("server.report.write_failed");
  }
}

obs::JsonValue Daemon::healthz() const {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("status", forced_.load(std::memory_order_acquire) ? "forced"
                  : draining()                            ? "draining"
                                                          : "serving");
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    v.set("connections", static_cast<std::int64_t>(active_connections_));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    v.set("queue_depth", static_cast<std::int64_t>(queue_.size()));
  }
  v.set("inflight", static_cast<std::int64_t>(cache_.inflight_count()));
  v.set("cache_size", static_cast<std::int64_t>(cache_.size()));
  v.set("breaker_open", static_cast<std::int64_t>(breaker_.open_count()));
  v.set("requests_total",
        static_cast<std::int64_t>(metrics_.counter("server.requests.total")));
  v.set("solves_executed",
        static_cast<std::int64_t>(metrics_.counter("server.solve.executed")));
  return v;
}

// ---------------------------------------------------------------------------
// Tracing surface

std::uint64_t Daemon::next_trace_id() {
  // splitmix64 over the per-process seed: well mixed, collision-free within a
  // run, and never zero (zero is the "untraced" sentinel).
  std::uint64_t z = trace_seed_ +
                    0x9e3779b97f4a7c15ull *
                        (trace_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

void Daemon::record_request(obs::RequestTrace trace) {
  slow_log_.offer(trace);
  if (recorder_.record(std::move(trace)) == 0)
    metrics_.add("server.recorder.dropped");
  else
    metrics_.add("server.recorder.records");
}

obs::JsonValue Daemon::tracez() const {
  obs::JsonValue v = obs::JsonValue::object();
  // Active flights first: the requests a stuck-daemon postmortem cares about.
  obs::JsonValue active = obs::JsonValue::array();
  const Clock::time_point now = Clock::now();
  for (const std::shared_ptr<Flight>& flight : cache_.inflight()) {
    obs::JsonValue f = obs::JsonValue::object();
    if (flight->trace_id() != 0)
      f.set("trace_id", obs::JsonValue(obs::trace_id_hex(flight->trace_id())));
    f.set("key", obs::JsonValue(flight->key()));
    const std::string cls = flight->model_class();
    if (!cls.empty()) f.set("model_class", obs::JsonValue(cls));
    f.set("age_ms", obs::JsonValue(ms_since(flight->created, now)));
    f.set("queue_ms", obs::JsonValue(flight->queue_ms()));
    f.set("done", obs::JsonValue(flight->done()));
    active.push_back(std::move(f));
  }
  v.set("active", std::move(active));
  v.set("slow", slow_log_.to_json());
  v.set("recorder", recorder_.to_json());
  return v;
}

obs::JsonValue Daemon::statusz() const {
  obs::JsonValue v = healthz();
  v.set("uptime_ms", obs::JsonValue(started_at_ == Clock::time_point{}
                                        ? 0.0
                                        : ms_since(started_at_)));
  obs::JsonValue rec = obs::JsonValue::object();
  rec.set("capacity", obs::JsonValue(static_cast<std::int64_t>(recorder_.capacity())));
  rec.set("size", obs::JsonValue(static_cast<std::int64_t>(recorder_.size())));
  rec.set("total", obs::JsonValue(recorder_.total()));
  rec.set("slow_log", obs::JsonValue(static_cast<std::int64_t>(slow_log_.size())));
  rec.set("dumps", obs::JsonValue(metrics_.counter("server.recorder.dumps")));
  v.set("recorder", std::move(rec));

  obs::JsonValue seeds = obs::JsonValue::object();
  seeds.set("enabled", obs::JsonValue(options_.warm_start_r));
  seeds.set("size", obs::JsonValue(static_cast<std::int64_t>(r_seeds_.size())));
  seeds.set("hits", obs::JsonValue(static_cast<std::int64_t>(r_seeds_.hits())));
  seeds.set("misses", obs::JsonValue(static_cast<std::int64_t>(r_seeds_.misses())));
  seeds.set("stores", obs::JsonValue(static_cast<std::int64_t>(r_seeds_.stores())));
  v.set("r_seed_cache", std::move(seeds));

  // Request-latency tail with its exemplar: the p99 here names the concrete
  // trace id to pull out of tracez / the recorder dump.
  const obs::HistogramStat h = metrics_.histogram("server.request.wall_ms");
  if (h.count > 0) {
    obs::JsonValue lat = obs::JsonValue::object();
    lat.set("count", obs::JsonValue(h.count));
    lat.set("p50_ms", obs::JsonValue(h.p50()));
    lat.set("p99_ms", obs::JsonValue(h.p99()));
    lat.set("max_ms", obs::JsonValue(h.max));
    for (std::size_t i = h.exemplars.size(); i-- > 0;) {
      if (h.exemplars[i].label.empty()) continue;
      lat.set("tail_trace_id", obs::JsonValue(h.exemplars[i].label));
      lat.set("tail_trace_ms", obs::JsonValue(h.exemplars[i].value));
      break;
    }
    v.set("request_wall_ms", std::move(lat));
  }

  obs::JsonValue counters = obs::JsonValue::object();
  for (const auto& [name, value] : metrics_.counters())
    if (name.rfind("server.", 0) == 0) counters.set(name, obs::JsonValue(value));
  v.set("counters", std::move(counters));
  return v;
}

void Daemon::dump_recorder(const char* trigger, bool force) {
  if (options_.recorder_dump_path.empty()) return;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    const Clock::time_point now = Clock::now();
    if (!force && last_dump_ != Clock::time_point{} &&
        ms_since(last_dump_, now) < options_.recorder_dump_min_interval_ms)
      return;
    last_dump_ = now;
  }
  sheds_since_dump_.store(0, std::memory_order_relaxed);
  try {
    obs::write_recorder_dump(options_.recorder_dump_path, trigger, recorder_, slow_log_);
    metrics_.add("server.recorder.dumps");
  } catch (const std::exception&) {
    metrics_.add("server.recorder.dump_failed");
  }
}

}  // namespace perfbg::server
