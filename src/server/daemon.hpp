// perfbgd: the overload-safe capacity-planning daemon (DESIGN.md §13).
//
// A Daemon listens on a Unix-domain socket for newline-delimited JSON
// solve/sweep requests (protocol.hpp) and executes them on a fixed pool of
// solver workers, engineered to degrade instead of fail:
//
//   admission   A request occupies a bounded work-queue slot only when it is
//               the *leader* of a new solve; the queue refusing a slot is a
//               typed kOverloaded response in microseconds, never unbounded
//               memory or a hang. Connections beyond --max-connections are
//               shed at accept the same way.
//   coalescing  Identical requests share one Flight (cache.hpp): a thundering
//               herd of N identical queries costs one solver execution.
//   memo cache  Finished solves are served from an LRU cache keyed by the
//               canonical request hash (the sweep journal's FNV-1a
//               convention); --warm-start seeds it from a served-request
//               journal of a previous daemon life.
//   deadlines   Every request runs under a CancellationToken deadline
//               (request's deadline_ms or the daemon default) enforced
//               cooperatively inside the solver loops; a watchdog thread
//               additionally force-completes flights stuck past deadline +
//               grace, so even a solve wedged outside any cancellation point
//               cannot strand its waiters.
//   breaker     Repeated kNonConvergence/kNumericalBreakdown failures of one
//               model class trip a circuit breaker (breaker.hpp) that
//               fast-fails with kCircuitOpen until a cool-down probe
//               succeeds.
//   drain       SIGINT/SIGTERM (level 1, via the runner's shared handlers)
//               stops accepting and finishes every accepted request; a second
//               signal (level 2) cancels in-flight solves and answers their
//               clients kInterrupted. Served requests are journaled
//               (perfbg.sweep_journal.v1), so nothing accepted is lost and
//               the next daemon life can warm-start from the journal. run()
//               returns 0 after a clean drain, 9 (kInterrupted) when forced.
//
// Control requests (healthz/metricsz) bypass admission entirely: they stay
// answerable while the solve path is saturated — that is their whole point.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/report.hpp"
#include "runner/journal.hpp"
#include "server/breaker.hpp"
#include "server/cache.hpp"
#include "server/protocol.hpp"
#include "server/socket.hpp"

namespace perfbg::server {

struct DaemonOptions {
  std::string socket_path;

  int workers = 4;            ///< solver pool size (= in-flight solve budget)
  int sweep_jobs = 1;         ///< SweepRunner threads per sweep request
  int max_connections = 256;  ///< concurrent client connections
  std::size_t max_queue = 64; ///< pending (admitted, not yet solving) requests

  double default_deadline_ms = 30000.0;  ///< per-request budget when the
                                         ///< request names none (0 = none)
  double watchdog_interval_ms = 20.0;    ///< flight-scan period
  double watchdog_grace_ms = 100.0;      ///< eviction = deadline + grace
  double write_timeout_ms = 5000.0;      ///< slow-reader budget per response

  std::size_t cache_capacity = 4096;     ///< memo-cache entries (LRU)
  int breaker_threshold = 3;             ///< consecutive failures to trip
  double breaker_cooldown_ms = 2000.0;   ///< open -> half-open probe delay

  std::size_t max_frame_bytes = 1u << 20;  ///< request frame bound (1 MiB)

  /// Parse the test_* request hooks (tests and the chaos loadgen only).
  bool enable_test_hooks = false;

  runner::JournalWriter* journal = nullptr;          ///< served-request sink
  const runner::JournalIndex* warm_start = nullptr;  ///< cache pre-seed

  /// Periodic run-report snapshot: rewritten every report_interval_ms while
  /// serving and once at shutdown, so two service runs can be diffed with
  /// perfbg_report_diff. Empty path disables.
  std::string report_path;
  double report_interval_ms = 0.0;
};

class Daemon {
 public:
  /// The report supplies the metrics registry every subsystem records into
  /// and collects per-solve health records.
  Daemon(DaemonOptions options, obs::RunReport& report);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and spawns the accept/worker/watchdog threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Blocks until the daemon has fully drained (after begin_drain(), a
  /// SIGINT/SIGTERM picked up by the watchdog, or force_drain()), then joins
  /// every thread and flushes the final report snapshot. Returns the process
  /// exit code: 0 for a clean drain, 9 (kInterrupted) when forced.
  int run();

  /// Level-1 drain: stop accepting connections and requests, finish every
  /// accepted request. Idempotent; run() unblocks once the drain completes.
  void begin_drain();
  /// Level-2 drain: additionally cancel in-flight solves and answer queued +
  /// flying requests with kInterrupted.
  void force_drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  const std::string& socket_path() const { return options_.socket_path; }
  SolutionCache& cache() { return cache_; }
  CircuitBreaker& breaker() { return breaker_; }

  /// healthz payload (also what the wire "healthz" request returns).
  obs::JsonValue healthz() const;

 private:
  struct WorkItem {
    std::uint64_t hash = 0;
    Request request;
    std::shared_ptr<Flight> flight;
    bool probe = false;  ///< this execution is a breaker half-open probe
  };

  struct ConnState {
    Socket socket;
    std::atomic<bool> done{false};
  };
  struct ConnEntry {
    std::thread thread;
    std::shared_ptr<ConnState> state;
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<ConnState> conn);
  /// Handles one parsed frame; returns false when the connection must drop
  /// (unwritable response / oversized frame).
  bool handle_frame(ConnState& conn, const std::string& line);
  obs::JsonValue process_request(const Request& request);
  obs::JsonValue finish_via_flight(const Request& request,
                                   const std::shared_ptr<Flight>& flight,
                                   std::chrono::steady_clock::time_point own_deadline,
                                   bool coalesced, bool probe);

  void worker_loop();
  void execute(WorkItem& item);
  obs::JsonValue run_model(const Request& request, const CancellationToken& token,
                           obs::JsonValue& health_out, bool& cache_ok);

  void watchdog_loop();
  void reap_finished_connections(bool join_all);
  void write_report_snapshot();
  void journal_outcome(const std::shared_ptr<Flight>& flight);

  DaemonOptions options_;
  obs::RunReport& report_;
  obs::MetricsRegistry& metrics_;
  SolutionCache cache_;
  CircuitBreaker breaker_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> forced_{false};
  std::atomic<bool> stop_watchdog_{false};

  std::mutex state_mu_;
  std::condition_variable state_cv_;

  mutable std::mutex queue_mu_;  // mutable: healthz() reads the depth
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool stop_workers_ = false;

  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::list<ConnEntry> connections_;
  std::size_t active_connections_ = 0;
};

}  // namespace perfbg::server
