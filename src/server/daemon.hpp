// perfbgd: the overload-safe capacity-planning daemon (DESIGN.md §13).
//
// A Daemon listens on a Unix-domain socket for newline-delimited JSON
// solve/sweep requests (protocol.hpp) and executes them on a fixed pool of
// solver workers, engineered to degrade instead of fail:
//
//   admission   A request occupies a bounded work-queue slot only when it is
//               the *leader* of a new solve; the queue refusing a slot is a
//               typed kOverloaded response in microseconds, never unbounded
//               memory or a hang. Connections beyond --max-connections are
//               shed at accept the same way.
//   coalescing  Identical requests share one Flight (cache.hpp): a thundering
//               herd of N identical queries costs one solver execution.
//   memo cache  Finished solves are served from an LRU cache keyed by the
//               canonical request hash (the sweep journal's FNV-1a
//               convention); --warm-start seeds it from a served-request
//               journal of a previous daemon life.
//   deadlines   Every request runs under a CancellationToken deadline
//               (request's deadline_ms or the daemon default) enforced
//               cooperatively inside the solver loops; a watchdog thread
//               additionally force-completes flights stuck past deadline +
//               grace, so even a solve wedged outside any cancellation point
//               cannot strand its waiters.
//   breaker     Repeated kNonConvergence/kNumericalBreakdown failures of one
//               model class trip a circuit breaker (breaker.hpp) that
//               fast-fails with kCircuitOpen until a cool-down probe
//               succeeds.
//   drain       SIGINT/SIGTERM (level 1, via the runner's shared handlers)
//               stops accepting and finishes every accepted request; a second
//               signal (level 2) cancels in-flight solves and answers their
//               clients kInterrupted. Served requests are journaled
//               (perfbg.sweep_journal.v1), so nothing accepted is lost and
//               the next daemon life can warm-start from the journal. run()
//               returns 0 after a clean drain, 9 (kInterrupted) when forced.
//
// Control requests (healthz/metricsz/tracez/statusz) bypass admission
// entirely: they stay answerable while the solve path is saturated — that is
// their whole point.
//
// Tracing (DESIGN.md §14): every non-control request gets a 64-bit trace id
// (client-supplied "trace_id" hex field, or daemon-assigned) that is echoed in
// the response, stamped on every span the request opens (accept → queue →
// worker → qbd.solve.*), journaled, recorded into an always-on flight
// recorder ring plus a top-K slow-request log (both served by tracez), and
// attached as the exemplar of the server.request.wall_ms histogram bucket it
// lands in — so a p99 spike in metricsz links to one concrete trace. The
// recorder dumps itself to --recorder-dump on watchdog evictions, kOverloaded
// bursts, and drain.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "qbd/warm_start.hpp"
#include "runner/journal.hpp"
#include "server/breaker.hpp"
#include "server/cache.hpp"
#include "server/protocol.hpp"
#include "server/socket.hpp"

namespace perfbg::server {

struct DaemonOptions {
  std::string socket_path;

  int workers = 4;            ///< solver pool size (= in-flight solve budget)
  int sweep_jobs = 1;         ///< SweepRunner threads per sweep request
  int max_connections = 256;  ///< concurrent client connections
  std::size_t max_queue = 64; ///< pending (admitted, not yet solving) requests

  double default_deadline_ms = 30000.0;  ///< per-request budget when the
                                         ///< request names none (0 = none)
  double watchdog_interval_ms = 20.0;    ///< flight-scan period
  double watchdog_grace_ms = 100.0;      ///< eviction = deadline + grace
  double write_timeout_ms = 5000.0;      ///< slow-reader budget per response

  std::size_t cache_capacity = 4096;     ///< memo-cache entries (LRU)
  int breaker_threshold = 3;             ///< consecutive failures to trip
  double breaker_cooldown_ms = 2000.0;   ///< open -> half-open probe delay

  std::size_t max_frame_bytes = 1u << 20;  ///< request frame bound (1 MiB)

  /// Parse the test_* request hooks (tests and the chaos loadgen only).
  bool enable_test_hooks = false;

  runner::JournalWriter* journal = nullptr;          ///< served-request sink
  const runner::JournalIndex* warm_start = nullptr;  ///< cache pre-seed

  /// --warm-start-r: seed each solve's R iteration from the last R solved for
  /// the same model class (workload|service|X|p — everything but the load
  /// axis; see qbd/warm_start.hpp). A stale seed costs bounded refinement
  /// time and falls back to the cold ladder, never a wrong answer. Off by
  /// default: warm solves report different iteration counts in their health
  /// records, which would break byte-parity comparisons between daemon runs.
  bool warm_start_r = false;

  /// Periodic run-report snapshot: rewritten every report_interval_ms while
  /// serving and once at shutdown, so two service runs can be diffed with
  /// perfbg_report_diff. Empty path disables.
  std::string report_path;
  double report_interval_ms = 0.0;

  // --- flight recorder (always on; see DESIGN.md §14) ---
  std::size_t recorder_capacity = 256;  ///< completed-request ring entries
  std::size_t slow_log_capacity = 16;   ///< top-K slow-request log entries
  /// Recorder dump file, rewritten on watchdog eviction, kOverloaded bursts,
  /// and drain. Empty path disables dumping (the in-memory recorder and the
  /// tracez endpoint still work).
  std::string recorder_dump_path;
  /// Rate limit between automatic dumps (the drain dump always writes).
  double recorder_dump_min_interval_ms = 1000.0;
  /// Sheds accumulated since the last dump that trigger an overload dump.
  std::size_t overload_burst_threshold = 32;
};

class Daemon {
 public:
  /// The report supplies the metrics registry every subsystem records into
  /// and collects per-solve health records.
  Daemon(DaemonOptions options, obs::RunReport& report);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and spawns the accept/worker/watchdog threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Blocks until the daemon has fully drained (after begin_drain(), a
  /// SIGINT/SIGTERM picked up by the watchdog, or force_drain()), then joins
  /// every thread and flushes the final report snapshot. Returns the process
  /// exit code: 0 for a clean drain, 9 (kInterrupted) when forced.
  int run();

  /// Level-1 drain: stop accepting connections and requests, finish every
  /// accepted request. Idempotent; run() unblocks once the drain completes.
  void begin_drain();
  /// Level-2 drain: additionally cancel in-flight solves and answer queued +
  /// flying requests with kInterrupted.
  void force_drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  const std::string& socket_path() const { return options_.socket_path; }
  SolutionCache& cache() { return cache_; }
  CircuitBreaker& breaker() { return breaker_; }

  /// healthz payload (also what the wire "healthz" request returns).
  obs::JsonValue healthz() const;
  /// tracez payload: active flights, slow-request log, flight-recorder ring.
  obs::JsonValue tracez() const;
  /// statusz payload: drain state, queue/cache/recorder occupancy, counter
  /// digest, request-latency tail with its exemplar trace id.
  obs::JsonValue statusz() const;

  const obs::FlightRecorder& recorder() const { return recorder_; }
  const obs::SlowRequestLog& slow_log() const { return slow_log_; }

  /// Writes the recorder dump file (no-op without --recorder-dump). `force`
  /// bypasses the min-interval rate limit (drain and test paths).
  void dump_recorder(const char* trigger, bool force);

 private:
  struct WorkItem {
    std::uint64_t hash = 0;
    Request request;
    std::shared_ptr<Flight> flight;
    obs::TraceContext trace;  ///< leader's request trace, for worker spans
    bool probe = false;  ///< this execution is a breaker half-open probe
  };

  /// Per-request telemetry assembled while a frame is being served, flushed
  /// into the flight recorder + slow log when the response is ready.
  struct RequestTelemetry {
    std::string key;
    std::string model_class;
    std::uint64_t leader_trace = 0;  ///< joiners: the leader flight's trace
    double queue_ms = -1.0;          ///< flight creation -> dequeue (leaders)
    double solve_ms = -1.0;          ///< solver execution wall (leaders)
    obs::JsonValue health;           ///< SolveHealth of the served solve
  };

  struct ConnState {
    Socket socket;
    std::atomic<bool> done{false};
  };
  struct ConnEntry {
    std::thread thread;
    std::shared_ptr<ConnState> state;
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<ConnState> conn);
  /// Handles one parsed frame; returns false when the connection must drop
  /// (unwritable response / oversized frame).
  bool handle_frame(ConnState& conn, const std::string& line);
  obs::JsonValue process_request(const Request& request, const obs::TraceContext& ctx,
                                 RequestTelemetry& tel);
  obs::JsonValue finish_via_flight(const Request& request,
                                   const std::shared_ptr<Flight>& flight,
                                   std::chrono::steady_clock::time_point own_deadline,
                                   bool coalesced, bool probe, RequestTelemetry& tel);

  void worker_loop();
  void execute(WorkItem& item);
  obs::JsonValue run_model(const Request& request, const CancellationToken& token,
                           const obs::TraceContext& ctx, obs::JsonValue& health_out,
                           bool& cache_ok);

  void watchdog_loop();
  void reap_finished_connections(bool join_all);
  void write_report_snapshot();
  /// Appends one served-outcome record (fsync'd) — called BEFORE the flight
  /// completes so no acknowledged response can miss the journal. Swallows
  /// write failures into `server.journal.write_failed`.
  void journal_outcome(const std::string& key, const obs::JsonValue& result,
                       const std::string& code, const std::string& message,
                       double wall_ms, std::uint64_t trace_id);

  /// Nonzero, process-unique trace id for a request that supplied none.
  std::uint64_t next_trace_id();
  /// Records a completed request into the ring + slow log and bumps counters.
  void record_request(obs::RequestTrace trace);

  DaemonOptions options_;
  obs::RunReport& report_;
  obs::MetricsRegistry& metrics_;
  SolutionCache cache_;
  CircuitBreaker breaker_;
  qbd::RSeedCache r_seeds_;  ///< per-model-class R warm-start seeds
  obs::FlightRecorder recorder_;
  obs::SlowRequestLog slow_log_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> forced_{false};
  std::atomic<bool> stop_watchdog_{false};

  std::atomic<std::uint64_t> trace_counter_{0};
  std::uint64_t trace_seed_ = 0;  ///< set once in start(); read-only after
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex dump_mu_;
  std::chrono::steady_clock::time_point last_dump_{};
  std::atomic<std::uint64_t> sheds_since_dump_{0};

  std::mutex state_mu_;
  std::condition_variable state_cv_;

  mutable std::mutex queue_mu_;  // mutable: healthz() reads the depth
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool stop_workers_ = false;

  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::list<ConnEntry> connections_;
  std::size_t active_connections_ = 0;
};

}  // namespace perfbg::server
