// Unix-domain stream sockets for perfbgd: a listening socket bound to a
// filesystem path and the accepted per-connection fd, both RAII. Local
// sockets keep the daemon free of port allocation and give tests/CI a
// collision-free endpoint per temp directory; the protocol on top is
// transport-agnostic newline-delimited JSON, so a TCP listener could be added
// without touching the daemon.
#pragma once

#include <string>

namespace perfbg::server {

/// Owning fd wrapper: closes on destruction, move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  /// shutdown(SHUT_RD): wakes a thread blocked in read with EOF while keeping
  /// the write side open — the drain path uses it to stop a connection from
  /// submitting further requests without cutting off its pending response.
  void shutdown_read();
  /// shutdown(SHUT_RDWR).
  void shutdown_both();

  /// Sets SO_SNDTIMEO so writes to a stalled peer fail with EAGAIN instead of
  /// blocking forever; write_all() turns that into a dropped connection.
  void set_send_timeout_ms(int timeout_ms);

 private:
  int fd_ = -1;
};

/// Listening Unix-domain socket bound to `path`. The constructor unlinks a
/// stale socket file (refusing to clobber a non-socket), binds, and listens;
/// throws std::runtime_error on any failure. The destructor unlinks the path.
class Listener {
 public:
  explicit Listener(const std::string& path, int backlog = 128);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const std::string& path() const { return path_; }
  int fd() const { return socket_.fd(); }

  /// Blocks for the next connection. Returns an invalid Socket when the
  /// listener was shut down (the drain path) or on a persistent accept error.
  Socket accept();

  /// Wakes a blocked accept() and refuses further connections.
  void shutdown();

 private:
  std::string path_;
  Socket socket_;
};

/// Connects to a perfbgd socket; throws std::runtime_error when the daemon is
/// not listening.
Socket connect_unix(const std::string& path);

}  // namespace perfbg::server
