// Per-model-class circuit breaker (DESIGN.md §13).
//
// A model class (workload + service shape + buffer size; protocol.hpp's
// model_class()) that keeps failing numerically — kNonConvergence or
// kNumericalBreakdown, the codes where the solver burned its whole fallback
// ladder — is a class that will almost certainly keep burning full iteration
// budgets on every retry. The breaker turns that from "every herd member pays
// the full solve cost to learn the same bad news" into a fast-fail:
//
//   closed --(N consecutive breaker-class failures)--> open
//   open:   requests fail immediately with kCircuitOpen carrying the cached
//           error, costing microseconds instead of a full ladder burn
//   open --(cool-down elapsed)--> half-open: exactly one probe request is
//           admitted through; success closes the breaker, failure re-opens it
//           and restarts the cool-down
//
// Failures that say nothing about the class's numerical health (kInvalidModel
// from a bad request, kDeadlineExceeded from an impatient client,
// kOverloaded, kInterrupted) never move the breaker.
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace perfbg::server {

/// Decision for one request against its class's breaker.
struct BreakerDecision {
  bool allow = true;        ///< false: fast-fail with kCircuitOpen
  bool probe = false;       ///< true: this is the half-open cool-down probe
  std::string last_error;   ///< cached failure message (allow == false)
  double retry_after_ms = 0.0;  ///< cool-down remaining (allow == false)
};

class CircuitBreaker {
 public:
  /// `threshold` consecutive failures trip a class; a tripped class fast-fails
  /// for `cooldown_ms` before admitting one probe. threshold < 1 disables the
  /// breaker entirely.
  CircuitBreaker(int threshold, double cooldown_ms,
                 obs::MetricsRegistry* metrics = nullptr)
      : threshold_(threshold), cooldown_ms_(cooldown_ms), metrics_(metrics) {}

  /// True for the error codes that charge the breaker.
  static bool counts_as_failure(const std::string& error_code) {
    return error_code == "kNonConvergence" || error_code == "kNumericalBreakdown";
  }

  /// Consults the class's state; an open breaker past its cool-down admits
  /// the caller as the probe (at most one concurrent probe per class).
  BreakerDecision admit(const std::string& model_class);

  /// Reports the outcome of an executed request ("" = success). Successes
  /// close the class; breaker-class failures charge it (and trip it at the
  /// threshold); neutral codes leave it unchanged. `was_probe` marks the
  /// half-open probe outcome.
  void report(const std::string& model_class, const std::string& error_code,
              const std::string& error_message, bool was_probe);

  /// Number of classes currently open (metricsz/healthz surface).
  std::size_t open_count() const;

 private:
  enum class State { kClosed, kOpen, kHalfOpen };
  struct ClassState {
    State state = State::kClosed;
    int consecutive_failures = 0;
    std::string last_error;
    std::chrono::steady_clock::time_point opened_at{};
  };

  std::size_t open_count_locked() const;
  void update_open_gauge_locked();

  int threshold_;
  double cooldown_ms_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, ClassState> classes_;
};

}  // namespace perfbg::server
