// Low-level fd I/O for the perfbgd socket layer, with a test fault-injection
// seam (DESIGN.md §13).
//
// Every byte the daemon moves goes through io_read()/io_write(): retrying
// loops over recv()/send() that absorb EINTR and EAGAIN storms (blocking
// sockets only see EAGAIN from SO_RCVTIMEO/SO_SNDTIMEO timeouts) and that
// consult an optionally installed IoFaultInjector first. Tests install an
// injector (tests/fault_injection.hpp) to produce short reads, EAGAIN storms,
// and mid-frame disconnects without any real network misbehaviour; production
// pays one relaxed atomic load when none is installed.
//
// On top sit the framing helpers the newline-delimited JSON protocol needs:
// LineReader (buffered reader with a hard frame-size bound) and
// write_line() (full-frame writer with an overall wall-clock budget, so a
// slow reader stalls one connection, never the daemon).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>

namespace perfbg::server {

/// Test seam: when installed, every io_read()/io_write() asks the injector
/// first. Implementations may shorten the operation (short reads), fail it
/// with an errno (EAGAIN storms, ECONNRESET), or simulate EOF (mid-frame
/// disconnect). Returning false performs the real syscall with the possibly
/// reduced length.
class IoFaultInjector {
 public:
  virtual ~IoFaultInjector() = default;
  /// `len` may be reduced (short read). Return true to skip the real recv and
  /// use `result`/`err` instead (result 0 = EOF, -1 = error with errno err).
  virtual bool on_read(int fd, std::size_t& len, ssize_t& result, int& err) = 0;
  /// Same contract for send.
  virtual bool on_write(int fd, std::size_t& len, ssize_t& result, int& err) = 0;
};

/// Installs (or, with nullptr, clears) the process-global injector. Test-only;
/// not thread-safe against in-flight I/O of a *different* injector, so tests
/// install before starting the daemon and clear after stopping it.
void install_io_fault_injector(IoFaultInjector* injector);

/// recv() with EINTR retry and bounded EAGAIN absorption. Returns the byte
/// count, 0 on EOF, or -1 with errno set on a hard error.
ssize_t io_read(int fd, void* buf, std::size_t len);

/// send() (MSG_NOSIGNAL) with the same retry discipline.
ssize_t io_write(int fd, const void* buf, std::size_t len);

/// Writes the whole buffer, retrying partial writes, within `budget_ms`
/// wall-clock (0 = no budget). Returns false on a hard error or when the
/// budget runs out — the slow-reader defence: the caller drops the
/// connection instead of wedging a daemon thread forever.
bool write_all(int fd, const char* data, std::size_t len, double budget_ms = 0.0);

/// write_all() of line + '\n'. `line` must not itself contain '\n' (callers
/// frame compact JSON, which never does).
bool write_line(int fd, const std::string& line, double budget_ms = 0.0);

/// Buffered newline-delimited frame reader over one fd.
class LineReader {
 public:
  enum class Status {
    kLine,     ///< a complete frame was returned
    kEof,      ///< orderly shutdown mid-idle (no partial frame pending)
    kError,    ///< hard read error, or EOF with a partial frame buffered
    kTooLong,  ///< frame exceeded max_frame_bytes; the stream cannot resync
  };

  LineReader(int fd, std::size_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  /// Blocks for the next '\n'-terminated frame (the terminator is stripped).
  Status next(std::string& line);

 private:
  int fd_;
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< prefix of buffer_ already searched for '\n'
};

}  // namespace perfbg::server
