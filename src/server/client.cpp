#include "server/client.hpp"

#include <sys/socket.h>

#include <stdexcept>

#include "server/io.hpp"

namespace perfbg::server {

namespace {
// A response frame larger than this is protocol breakage, not data.
constexpr std::size_t kMaxResponseBytes = 8u << 20;
}  // namespace

Client::Client(const std::string& socket_path) : socket_(connect_unix(socket_path)) {}

bool Client::send_line(const std::string& line) {
  return write_line(socket_.fd(), line);
}

bool Client::recv_line(std::string& line) {
  while (true) {
    for (; scanned_ < buffer_.size(); ++scanned_) {
      if (buffer_[scanned_] == '\n') {
        line.assign(buffer_, 0, scanned_);
        buffer_.erase(0, scanned_ + 1);
        scanned_ = 0;
        return true;
      }
    }
    if (buffer_.size() > kMaxResponseBytes) return false;
    char chunk[4096];
    const ssize_t n = io_read(socket_.fd(), chunk, sizeof chunk);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

obs::JsonValue Client::request(const obs::JsonValue& request_frame) {
  if (!send_line(request_frame.dump()))
    throw std::runtime_error("perfbgd client: send failed");
  return read_response();
}

obs::JsonValue Client::read_response() {
  std::string line;
  if (!recv_line(line))
    throw std::runtime_error("perfbgd client: connection closed before response");
  return obs::parse_json(line, obs::JsonLimits{kMaxResponseBytes, 64});
}

void Client::shutdown_write() {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

obs::JsonValue solve_request(const std::string& id, const std::string& workload,
                             double util, double p, int buffer, double deadline_ms) {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("id", id);
  v.set("kind", "solve");
  v.set("workload", workload);
  v.set("util", util);
  v.set("p", p);
  v.set("buffer", buffer);
  if (deadline_ms > 0.0) v.set("deadline_ms", deadline_ms);
  return v;
}

obs::JsonValue control_request(const std::string& id, const std::string& kind) {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("id", id);
  v.set("kind", kind);
  return v;
}

}  // namespace perfbg::server
