#include "server/io.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>

namespace perfbg::server {

namespace {

std::atomic<IoFaultInjector*> g_injector{nullptr};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Waits for the fd to become readable/writable again after an EAGAIN; the
/// cap keeps a socket wedged in a timeout loop from spinning a core.
void wait_ready(int fd, short events) {
  struct pollfd p {};
  p.fd = fd;
  p.events = events;
  (void)::poll(&p, 1, 50);
}

}  // namespace

void install_io_fault_injector(IoFaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

ssize_t io_read(int fd, void* buf, std::size_t len) {
  while (true) {
    std::size_t n = len;
    if (IoFaultInjector* inj = g_injector.load(std::memory_order_acquire)) {
      ssize_t result = 0;
      int err = 0;
      if (inj->on_read(fd, n, result, err)) {
        if (result >= 0) return result;
        if (err == EINTR) continue;
        if (err == EAGAIN || err == EWOULDBLOCK) {
          wait_ready(fd, POLLIN);
          continue;
        }
        errno = err;
        return -1;
      }
    }
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd, POLLIN);
      continue;
    }
    return -1;
  }
}

ssize_t io_write(int fd, const void* buf, std::size_t len) {
  while (true) {
    std::size_t n = len;
    if (IoFaultInjector* inj = g_injector.load(std::memory_order_acquire)) {
      ssize_t result = 0;
      int err = 0;
      if (inj->on_write(fd, n, result, err)) {
        if (result >= 0) return result;
        if (err == EINTR) continue;
        if (err == EAGAIN || err == EWOULDBLOCK) {
          wait_ready(fd, POLLOUT);
          continue;
        }
        errno = err;
        return -1;
      }
    }
    // MSG_NOSIGNAL: a client that disconnected mid-response must produce an
    // EPIPE error on this connection, not a process-wide SIGPIPE.
    const ssize_t r = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd, POLLOUT);
      continue;
    }
    return -1;
  }
}

bool write_all(int fd, const char* data, std::size_t len, double budget_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t off = 0;
  while (off < len) {
    if (budget_ms > 0.0 && ms_since(t0) > budget_ms) return false;
    const ssize_t r = io_write(fd, data + off, len - off);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_line(int fd, const std::string& line, double budget_ms) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(fd, framed.data(), framed.size(), budget_ms);
}

LineReader::Status LineReader::next(std::string& line) {
  while (true) {
    // Scan only the unscanned suffix so a large frame costs O(bytes), not
    // O(bytes * reads).
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return Status::kLine;
    }
    scanned_ = buffer_.size();
    if (buffer_.size() > max_frame_bytes_) return Status::kTooLong;

    char chunk[4096];
    const ssize_t r = io_read(fd_, chunk, sizeof(chunk));
    if (r < 0) return Status::kError;
    if (r == 0) return buffer_.empty() ? Status::kEof : Status::kError;
    buffer_.append(chunk, static_cast<std::size_t>(r));
  }
}

}  // namespace perfbg::server
