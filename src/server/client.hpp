// Minimal blocking perfbgd client: one connection, newline-delimited JSON
// request/response in lock step. Shared by tests/test_server.cpp and
// examples/perfbgd_loadgen.cpp so both speak the exact protocol the daemon
// serves (protocol.hpp).
#pragma once

#include <string>

#include "obs/json.hpp"
#include "server/socket.hpp"

namespace perfbg::server {

class Client {
 public:
  /// Connects to a daemon socket; throws std::runtime_error when nothing is
  /// listening at `socket_path`.
  explicit Client(const std::string& socket_path);

  /// Raw frame I/O: send_line appends the newline; recv_line strips it.
  /// Both return false on a connection failure (EOF, reset, oversized reply).
  bool send_line(const std::string& line);
  bool recv_line(std::string& line);

  /// Sends `request` (dumped compact) and blocks for one response frame.
  /// Throws std::runtime_error on connection failure or an unparseable
  /// response — protocol breakage, not a typed daemon error (those come back
  /// as {"ok": false, "error": {...}} values).
  obs::JsonValue request(const obs::JsonValue& request_frame);

  /// Pipelining support: send N frames first, then collect N responses.
  obs::JsonValue read_response();

  int fd() const { return socket_.fd(); }
  /// Half-close the write side: the daemon sees EOF after the in-flight
  /// frames and closes once it answered them (clean client-side drain).
  void shutdown_write();

 private:
  Socket socket_;
  std::string buffer_;
  std::size_t scanned_ = 0;
};

/// Convenience builders for the common request shapes.
obs::JsonValue solve_request(const std::string& id, const std::string& workload,
                             double util, double p, int buffer,
                             double deadline_ms = 0.0);
obs::JsonValue control_request(const std::string& id, const std::string& kind);

}  // namespace perfbg::server
