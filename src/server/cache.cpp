#include "server/cache.hpp"

#include "util/failpoint.hpp"

namespace perfbg::server {

bool Flight::complete(obs::JsonValue result, obs::JsonValue health,
                      std::string error_code, std::string error_message,
                      double wall_ms) {
  if (error_code.empty() && failpoint("server.flight.complete") != 0) {
    // Injected allocation failure while landing a success: the waiters must
    // wake with a typed error — never a torn outcome, never a hang on a
    // flight that cannot land.
    result = obs::JsonValue();
    health = obs::JsonValue();
    error_code = "kUnclassified";
    error_message = "flight completion failed (injected allocation fault)";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return false;
    done_ = true;
    result_ = std::move(result);
    health_ = std::move(health);
    error_code_ = std::move(error_code);
    error_message_ = std::move(error_message);
    wall_ms_ = wall_ms;
  }
  cv_.notify_all();
  return true;
}

bool Flight::wait_done(std::chrono::steady_clock::time_point own_deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (own_deadline == std::chrono::steady_clock::time_point{}) {
    cv_.wait(lock, [&] { return done_; });
    return true;
  }
  return cv_.wait_until(lock, own_deadline, [&] { return done_; });
}

bool Flight::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void Flight::set_trace(std::uint64_t trace_id, std::int64_t root_span,
                       std::string model_class) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = trace_id;
  root_span_ = root_span;
  model_class_ = std::move(model_class);
}

std::uint64_t Flight::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

std::int64_t Flight::root_span() const {
  std::lock_guard<std::mutex> lock(mu_);
  return root_span_;
}

std::string Flight::model_class() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_class_;
}

void Flight::set_queue_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_ms_ = ms;
}

double Flight::queue_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_ms_;
}

Lookup SolutionCache::lookup(std::uint64_t hash, const std::string& key,
                             std::chrono::steady_clock::time_point deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(hash); it != entries_.end()) {
    // Touch the LRU position; splice keeps the iterator valid.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (metrics_) metrics_->add("server.cache.hit");
    return Lookup{Lookup::Outcome::kHit, it->second.entry, nullptr};
  }
  if (auto it = flights_.find(hash); it != flights_.end()) {
    if (metrics_) metrics_->add("server.cache.coalesced");
    return Lookup{Lookup::Outcome::kJoined, {}, it->second};
  }
  auto flight = std::make_shared<Flight>(key);
  flight->deadline = deadline;  // before publication: watchdog reads race-free
  flights_.emplace(hash, flight);
  if (metrics_) metrics_->add("server.cache.miss");
  return Lookup{Lookup::Outcome::kLeader, {}, std::move(flight)};
}

std::optional<CacheEntry> SolutionCache::peek(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hash);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  if (metrics_) metrics_->add("server.cache.hit");
  return it->second.entry;
}

void SolutionCache::finish(std::uint64_t hash, const std::shared_ptr<Flight>& flight,
                           bool cache_result) {
  std::lock_guard<std::mutex> lock(mu_);
  // Retire only our own flight: a watchdog-evicted slot may already host a
  // newer flight for the same hash, which must keep flying.
  if (auto it = flights_.find(hash); it != flights_.end() && it->second == flight)
    flights_.erase(it);
  if (cache_result && flight->ok())
    insert_locked(hash,
                  CacheEntry{flight->result(), flight->health(), flight->wall_ms()});
}

void SolutionCache::seed(std::uint64_t hash, CacheEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(hash)) return;
  insert_locked(hash, std::move(entry));
}

void SolutionCache::insert_locked(std::uint64_t hash, CacheEntry entry) {
  if (capacity_ == 0) return;
  if (failpoint("server.cache.insert") != 0) {
    // Injected allocation failure: drop the entry whole — no LRU node without
    // a map slot or vice versa — and the cost is one future re-solve.
    if (metrics_) metrics_->add("server.cache.insert_failed");
    return;
  }
  if (auto it = entries_.find(hash); it != entries_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    lru_.push_front(hash);
    entries_.emplace(hash, Slot{std::move(entry), lru_.begin()});
    while (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      if (metrics_) metrics_->add("server.cache.evicted");
    }
  }
  if (metrics_) {
    metrics_->add("server.cache.insert");
    metrics_->set("server.cache.size", static_cast<double>(entries_.size()));
  }
}

std::vector<std::shared_ptr<Flight>> SolutionCache::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Flight>> out;
  out.reserve(flights_.size());
  for (const auto& [hash, flight] : flights_) out.push_back(flight);
  return out;
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t SolutionCache::inflight_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace perfbg::server
