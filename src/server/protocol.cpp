#include "server/protocol.hpp"

#include "obs/span.hpp"
#include "traffic/phase_type.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

namespace perfbg::server {

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw Error(ErrorCode::kInvalidModel, "bad request: " + what);
}

double get_number(const obs::JsonValue& frame, const char* name, double fallback) {
  const obs::JsonValue* v = frame.find(name);
  if (!v) return fallback;
  if (!v->is_number()) bad_request(std::string("field '") + name + "' must be a number");
  return v->as_double();
}

std::string get_string(const obs::JsonValue& frame, const char* name,
                       const std::string& fallback) {
  const obs::JsonValue* v = frame.find(name);
  if (!v) return fallback;
  if (!v->is_string()) bad_request(std::string("field '") + name + "' must be a string");
  return v->as_string();
}

traffic::MarkovianArrivalProcess pick_workload(const std::string& name) {
  if (name == "email") return workloads::email();
  if (name == "softdev") return workloads::software_dev();
  if (name == "useraccounts") return workloads::user_accounts();
  if (name == "lowacf") return workloads::email_low_acf();
  if (name == "ipp") return workloads::email_ipp();
  if (name == "poisson") return workloads::email_poisson();
  bad_request("unknown workload '" + name +
              "' (email|softdev|useraccounts|lowacf|ipp|poisson)");
}

traffic::PhaseType pick_service(const std::string& name, double mean) {
  if (name == "expo") return traffic::PhaseType::exponential(mean);
  if (name == "erlang2") return traffic::PhaseType::erlang(2, mean);
  if (name == "erlang4") return traffic::PhaseType::erlang(4, mean);
  if (name == "h2")  // balanced 2-branch, SCV = 2 at any mean
    return traffic::PhaseType::hyperexponential(0.5, mean * 1.7071068, mean * 0.2928932);
  bad_request("unknown service '" + name + "' (expo|erlang2|erlang4|h2)");
}

}  // namespace

Request parse_request(const obs::JsonValue& frame, bool allow_test_hooks) {
  if (!frame.is_object()) bad_request("frame must be a JSON object");

  Request req;
  req.id = get_string(frame, "id", "");

  const std::string kind = get_string(frame, "kind", "solve");
  if (kind == "solve") req.kind = Request::Kind::kSolve;
  else if (kind == "sweep") req.kind = Request::Kind::kSweep;
  else if (kind == "healthz") req.kind = Request::Kind::kHealthz;
  else if (kind == "metricsz") req.kind = Request::Kind::kMetricsz;
  else if (kind == "tracez") req.kind = Request::Kind::kTracez;
  else if (kind == "statusz") req.kind = Request::Kind::kStatusz;
  else bad_request("unknown kind '" + kind +
                   "' (solve|sweep|healthz|metricsz|tracez|statusz)");
  if (req.is_control()) return req;

  if (const obs::JsonValue* tid = frame.find("trace_id")) {
    if (!tid->is_string() || !obs::parse_trace_id_hex(tid->as_string(), req.trace_id))
      bad_request("'trace_id' must be a string of 1..16 hex digits");
  }

  req.workload = get_string(frame, "workload", req.workload);
  req.service = get_string(frame, "service", req.service);
  req.util = get_number(frame, "util", req.util);
  req.p = get_number(frame, "p", req.p);
  req.buffer = static_cast<int>(get_number(frame, "buffer", req.buffer));
  req.idle_wait = get_number(frame, "idle_wait", req.idle_wait);
  req.service_mean = get_number(frame, "service_mean", req.service_mean);
  req.deadline_ms = get_number(frame, "deadline_ms", 0.0);

  if (!(req.util > 0.0)) bad_request("'util' must be > 0");
  if (!(req.p >= 0.0 && req.p <= 1.0)) bad_request("'p' must be in [0, 1]");
  if (req.buffer < 1) bad_request("'buffer' must be >= 1");
  if (!(req.idle_wait >= 0.0)) bad_request("'idle_wait' must be >= 0");
  if (!(req.service_mean > 0.0)) bad_request("'service_mean' must be > 0");
  if (req.deadline_ms < 0.0) bad_request("'deadline_ms' must be >= 0");

  if (req.kind == Request::Kind::kSweep) {
    const obs::JsonValue* utils = frame.find("utils");
    if (!utils || !utils->is_array() || utils->as_array().empty())
      bad_request("sweep requests need a non-empty 'utils' array");
    for (const obs::JsonValue& u : utils->as_array()) {
      if (!u.is_number() || !(u.as_double() > 0.0))
        bad_request("'utils' entries must be numbers > 0");
      req.utils.push_back(u.as_double());
    }
  } else if (frame.contains("utils")) {
    bad_request("'utils' is only valid on sweep requests");
  }

  // Validate the names eagerly so a bad request is rejected at parse time,
  // before it can occupy a cache flight or a queue slot.
  (void)pick_workload(req.workload);
  (void)pick_service(req.service, req.service_mean);

  if (allow_test_hooks) {
    req.test_sleep_ms = get_number(frame, "test_sleep_ms", 0.0);
    req.test_wedge_ms = get_number(frame, "test_wedge_ms", 0.0);
    req.test_fail_code = get_string(frame, "test_fail_code", "");
  }
  return req;
}

std::string canonical_key(const Request& req) {
  if (req.is_control()) return "";
  std::string key = req.workload + "|svc=" + req.service +
                    "|mean=" + format_number(req.service_mean, 6) +
                    "|u=" + format_number(req.util, 6) +
                    "|p=" + format_number(req.p, 6) +
                    "|X=" + std::to_string(req.buffer) +
                    "|iw=" + format_number(req.idle_wait, 6);
  if (req.kind == Request::Kind::kSweep) {
    key += "|sweep=";
    for (std::size_t i = 0; i < req.utils.size(); ++i) {
      if (i) key += ',';
      key += format_number(req.utils[i], 6);
    }
  }
  // The test hooks change what "executing this request" means, so they are
  // part of the identity — a herd of identical slow requests still coalesces,
  // but a hooked request can never serve an unhooked one from cache.
  if (req.test_sleep_ms > 0.0) key += "|sleep=" + format_number(req.test_sleep_ms, 6);
  if (req.test_wedge_ms > 0.0) key += "|wedge=" + format_number(req.test_wedge_ms, 6);
  if (!req.test_fail_code.empty()) key += "|fail=" + req.test_fail_code;
  return key;
}

std::string model_class(const Request& req) {
  return req.workload + "|svc=" + req.service + "|X=" + std::to_string(req.buffer);
}

core::FgBgParams build_params(const Request& req, double u) {
  core::FgBgParams params{
      pick_workload(req.workload).scaled_to_utilization(u, req.service_mean)};
  params.mean_service_time = req.service_mean;
  params.service_distribution = pick_service(req.service, req.service_mean);
  params.bg_probability = req.p;
  params.bg_buffer = req.buffer;
  params.idle_wait_intensity = req.idle_wait;
  return params;
}

obs::JsonValue metrics_payload(const core::FgBgMetrics& m) {
  obs::JsonValue payload = obs::JsonValue::object();
  payload.set("fg_queue_length", obs::JsonValue(m.fg_queue_length));
  payload.set("fg_response_time", obs::JsonValue(m.fg_response_time));
  payload.set("fg_delayed", obs::JsonValue(m.fg_delayed));
  payload.set("bg_completion", obs::JsonValue(m.bg_completion));
  payload.set("bg_queue_length", obs::JsonValue(m.bg_queue_length));
  payload.set("busy_fraction", obs::JsonValue(m.busy_fraction));
  return payload;
}

obs::JsonValue make_result_response(const std::string& id, obs::JsonValue result,
                                    obs::JsonValue health, bool cached,
                                    bool coalesced, double wall_ms) {
  obs::JsonValue resp = obs::JsonValue::object();
  resp.set("schema", obs::JsonValue(kResponseSchema));
  resp.set("id", obs::JsonValue(id));
  resp.set("ok", obs::JsonValue(true));
  resp.set("cached", obs::JsonValue(cached));
  resp.set("coalesced", obs::JsonValue(coalesced));
  resp.set("wall_ms", obs::JsonValue(wall_ms));
  resp.set("result", std::move(result));
  if (!health.is_null()) resp.set("health", std::move(health));
  return resp;
}

obs::JsonValue make_error_response(const std::string& id, const std::string& code,
                                   const std::string& message) {
  obs::JsonValue error = obs::JsonValue::object();
  error.set("code", obs::JsonValue(code));
  error.set("message", obs::JsonValue(message));
  obs::JsonValue resp = obs::JsonValue::object();
  resp.set("schema", obs::JsonValue(kResponseSchema));
  resp.set("id", obs::JsonValue(id));
  resp.set("ok", obs::JsonValue(false));
  resp.set("error", std::move(error));
  return resp;
}

void stamp_trace(obs::JsonValue& response, std::uint64_t trace_id,
                 std::uint64_t leader_trace_id) {
  if (trace_id == 0) return;
  response.set("trace_id", obs::JsonValue(obs::trace_id_hex(trace_id)));
  if (leader_trace_id != 0 && leader_trace_id != trace_id)
    response.set("trace_leader", obs::JsonValue(obs::trace_id_hex(leader_trace_id)));
}

}  // namespace perfbg::server
