#include "server/socket.hpp"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <stdexcept>

namespace perfbg::server {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("perfbg: socket path too long (" +
                             std::to_string(path.size()) + " bytes, max " +
                             std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_send_timeout_ms(int timeout_ms) {
  if (fd_ < 0 || timeout_ms <= 0) return;
  struct timeval tv {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Listener::Listener(const std::string& path, int backlog) : path_(path) {
  const sockaddr_un addr = make_addr(path);

  // A stale socket file from a crashed daemon is expected; anything else at
  // the path is a configuration error we must not delete.
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode))
      throw std::runtime_error("perfbg: '" + path + "' exists and is not a socket");
    ::unlink(path.c_str());
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("perfbg: socket() failed: ") + ::strerror(errno));
  socket_ = Socket(fd);

  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("perfbg: bind('" + path + "') failed: " + ::strerror(errno));
  if (::listen(fd, backlog) != 0)
    throw std::runtime_error("perfbg: listen('" + path + "') failed: " + ::strerror(errno));
}

Listener::~Listener() {
  socket_.close();
  ::unlink(path_.c_str());
}

Socket Listener::accept() {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EINVAL/EBADF: the listener was shut down or closed (drain); anything
    // else is a persistent accept failure — either way the accept loop ends.
    return Socket();
  }
}

void Listener::shutdown() { socket_.shutdown_both(); }

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("perfbg: socket() failed: ") + ::strerror(errno));
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("perfbg: connect('" + path + "') failed: " +
                             ::strerror(errno));
  return sock;
}

}  // namespace perfbg::server
