#include "sim/statistics.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.hpp"

namespace perfbg::sim {

void OnlineMean::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double OnlineMean::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

void TimeWeighted::advance(double now, double level_since_last) {
  PERFBG_REQUIRE(now >= last_time_, "time must not run backwards");
  const double dt = now - last_time_;
  integral_ += dt * level_since_last;
  elapsed_ += dt;
  last_time_ = now;
}

void TimeWeighted::reset(double now) {
  last_time_ = now;
  integral_ = 0.0;
  elapsed_ = 0.0;
}

double t_quantile_975(std::size_t df) {
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
      2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 12.706;  // degenerate; caller guards against df == 0
  if (df < kTable.size()) return kTable[df];
  return 1.96;
}

void BatchMeans::add_batch(double value) { acc_.add(value); }

ReservoirQuantiles::ReservoirQuantiles(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed ? seed : 0x853c49e6748fea9bULL) {
  PERFBG_REQUIRE(capacity >= 1, "reservoir needs capacity >= 1");
  sample_.reserve(capacity);
}

std::uint64_t ReservoirQuantiles::next_random() {
  // splitmix64: tiny, fast, and plenty for reservoir index selection.
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void ReservoirQuantiles::add(double x) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Algorithm R: keep the new item with probability capacity / seen.
  const std::size_t j = static_cast<std::size_t>(next_random() % seen_);
  if (j < capacity_) sample_[j] = x;
}

double ReservoirQuantiles::quantile(double q) const {
  PERFBG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  PERFBG_REQUIRE(!sample_.empty(), "no observations recorded");
  // The reservoir is small; sort a copy lazily (const interface).
  static thread_local std::vector<double> scratch;
  scratch = sample_;
  std::sort(scratch.begin(), scratch.end());
  const double pos = q * static_cast<double>(scratch.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, scratch.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return scratch[lo] * (1.0 - frac) + scratch[hi] * frac;
}

Estimate BatchMeans::estimate() const {
  Estimate e;
  e.mean = acc_.mean();
  const std::size_t n = acc_.count();
  if (n >= 2) {
    const double se = std::sqrt(acc_.variance() / static_cast<double>(n));
    e.half_width = t_quantile_975(n - 1) * se;
  }
  return e;
}

}  // namespace perfbg::sim
