#include "sim/multiclass_simulator.hpp"

#include <random>

#include "traffic/sampler.hpp"
#include "util/check.hpp"

namespace perfbg::sim {

namespace {

enum class Serving { kNone, kFg, kBg1, kBg2 };

struct Accum {
  double qlen_fg = 0.0, qlen_1 = 0.0, qlen_2 = 0.0;
  double busy = 0.0, idle = 0.0;
  double elapsed = 0.0;
  std::uint64_t gen1 = 0, drop1 = 0, gen2 = 0, drop2 = 0;
};

}  // namespace

McSimMetrics simulate_multiclass(const core::McParams& params, const McSimConfig& config) {
  params.validate();
  PERFBG_REQUIRE(config.batches >= 2, "need at least two batches for a CI");
  PERFBG_REQUIRE(config.batch_time > 0.0 && config.warmup_time >= 0.0,
                 "times must be positive");

  const double mu = params.service_rate();
  const double alpha = params.idle_wait_rate();

  std::mt19937_64 rng(config.seed);
  traffic::MapSampler arrivals(params.arrivals, config.seed ^ 0xD1B54A32D192ED03ULL);
  std::exponential_distribution<double> service_draw(mu);
  std::exponential_distribution<double> idle_draw(alpha);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  double now = 0.0;
  int y = 0, x1 = 0, x2 = 0;
  Serving serving = Serving::kNone;
  double next_arrival = arrivals.next_interarrival();
  double next_completion = -1.0;
  double next_idle_expiry = -1.0;

  auto start_fg = [&]() {
    serving = Serving::kFg;
    next_completion = now + service_draw(rng);
    next_idle_expiry = -1.0;
  };
  auto go_idle = [&]() {
    serving = Serving::kNone;
    next_completion = -1.0;
    next_idle_expiry = x1 + x2 > 0 ? now + idle_draw(rng) : -1.0;
  };

  const double t_end =
      config.warmup_time + static_cast<double>(config.batches) * config.batch_time;
  bool in_warmup = config.warmup_time > 0.0;
  double batch_end = in_warmup ? config.warmup_time : config.batch_time;
  Accum acc;
  std::vector<Accum> finished;

  auto integrate = [&](double upto) {
    const double dt = upto - now;
    acc.elapsed += dt;
    acc.qlen_fg += dt * y;
    acc.qlen_1 += dt * x1;
    acc.qlen_2 += dt * x2;
    if (serving != Serving::kNone)
      acc.busy += dt;
    else
      acc.idle += dt;
  };

  while (now < t_end) {
    double te = next_arrival;
    int which = 0;
    if (next_completion >= 0.0 && next_completion < te) {
      te = next_completion;
      which = 1;
    }
    if (next_idle_expiry >= 0.0 && next_idle_expiry < te) {
      te = next_idle_expiry;
      which = 2;
    }
    while (te >= batch_end && now < t_end) {
      integrate(batch_end);
      now = batch_end;
      if (in_warmup)
        in_warmup = false;
      else
        finished.push_back(acc);
      acc = Accum{};
      batch_end += config.batch_time;
      if (now >= t_end) break;
    }
    if (now >= t_end) break;
    integrate(te);
    now = te;

    switch (which) {
      case 0: {  // foreground arrival
        ++y;
        if (serving == Serving::kNone) start_fg();
        next_arrival = now + arrivals.next_interarrival();
        break;
      }
      case 1: {  // completion
        if (serving == Serving::kFg) {
          --y;
          const double u = coin(rng);
          if (u < params.p1) {
            ++acc.gen1;
            if (x1 < params.buffer1)
              ++x1;
            else
              ++acc.drop1;
          } else if (u < params.p1 + params.p2) {
            ++acc.gen2;
            if (x2 < params.buffer2)
              ++x2;
            else
              ++acc.drop2;
          }
        } else if (serving == Serving::kBg1) {
          --x1;
        } else {
          --x2;
        }
        if (y > 0)
          start_fg();
        else
          go_idle();
        break;
      }
      case 2: {  // idle expiry: class 1 first
        PERFBG_ASSERT(serving == Serving::kNone && y == 0 && x1 + x2 > 0,
                      "idle expiry in a non-idle state");
        serving = x1 > 0 ? Serving::kBg1 : Serving::kBg2;
        next_completion = now + service_draw(rng);
        next_idle_expiry = -1.0;
        break;
      }
    }
  }

  BatchMeans qfg, q1, q2, c1, c2, busy, idle;
  McSimMetrics out;
  for (const Accum& b : finished) {
    qfg.add_batch(b.qlen_fg / b.elapsed);
    q1.add_batch(b.qlen_1 / b.elapsed);
    q2.add_batch(b.qlen_2 / b.elapsed);
    busy.add_batch(b.busy / b.elapsed);
    idle.add_batch(b.idle / b.elapsed);
    if (b.gen1 > 0)
      c1.add_batch(1.0 - static_cast<double>(b.drop1) / static_cast<double>(b.gen1));
    if (b.gen2 > 0)
      c2.add_batch(1.0 - static_cast<double>(b.drop2) / static_cast<double>(b.gen2));
    out.bg1_generated += b.gen1;
    out.bg1_dropped += b.drop1;
    out.bg2_generated += b.gen2;
    out.bg2_dropped += b.drop2;
  }
  out.fg_queue_length = qfg.estimate();
  out.bg1_queue_length = q1.estimate();
  out.bg2_queue_length = q2.estimate();
  out.bg1_completion = c1.batches() > 0 ? c1.estimate() : Estimate{1.0, 0.0};
  out.bg2_completion = c2.batches() > 0 ? c2.estimate() : Estimate{1.0, 0.0};
  out.busy_fraction = busy.estimate();
  out.idle_fraction = idle.estimate();
  return out;
}

}  // namespace perfbg::sim
