// Discrete-event simulation of the two-class background extension
// (core/multiclass.hpp), used to validate the multi-class QBD model.
#pragma once

#include <cstdint>

#include "core/multiclass.hpp"
#include "sim/statistics.hpp"

namespace perfbg::sim {

struct McSimConfig {
  double warmup_time = 2.0e5;
  double batch_time = 5.0e5;
  int batches = 20;
  std::uint64_t seed = 20060625;
};

struct McSimMetrics {
  Estimate fg_queue_length;
  Estimate bg1_queue_length;
  Estimate bg2_queue_length;
  Estimate bg1_completion;
  Estimate bg2_completion;
  Estimate busy_fraction;
  Estimate idle_fraction;
  std::uint64_t bg1_generated = 0;
  std::uint64_t bg1_dropped = 0;
  std::uint64_t bg2_generated = 0;
  std::uint64_t bg2_dropped = 0;
};

/// Runs the two-class simulation; deterministic given (params, seed).
McSimMetrics simulate_multiclass(const core::McParams& params, const McSimConfig& config);

}  // namespace perfbg::sim
