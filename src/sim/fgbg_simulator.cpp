#include "sim/fgbg_simulator.hpp"

#include <deque>
#include <optional>
#include <random>

#include "obs/span.hpp"
#include "traffic/sampler.hpp"
#include "util/check.hpp"

namespace perfbg::sim {

namespace {

enum class Serving { kNone, kFg, kBg };

/// Accumulators for one measurement batch.
struct BatchAccum {
  double qlen_fg_integral = 0.0;
  double qlen_bg_integral = 0.0;
  double busy_integral = 0.0;
  double bg_busy_integral = 0.0;
  double idle_integral = 0.0;
  double elapsed = 0.0;
  std::uint64_t fg_arrivals = 0;
  std::uint64_t fg_delayed = 0;
  std::uint64_t fg_completed = 0;
  std::uint64_t bg_generated = 0;
  std::uint64_t bg_dropped = 0;
  std::uint64_t bg_completed = 0;
  std::uint64_t idle_expiries = 0;
  double response_sum = 0.0;
};

/// One "sim.batch" trace event from a finished batch's accumulators.
obs::TraceEvent batch_event(int index, const BatchAccum& b) {
  obs::TraceEvent e("sim.batch");
  e.with("batch", obs::JsonValue(index))
      .with("elapsed", obs::JsonValue(b.elapsed))
      .with("qlen_fg", obs::JsonValue(b.qlen_fg_integral / b.elapsed))
      .with("qlen_bg", obs::JsonValue(b.qlen_bg_integral / b.elapsed))
      .with("busy_fraction", obs::JsonValue(b.busy_integral / b.elapsed))
      .with("fg_throughput",
            obs::JsonValue(static_cast<double>(b.fg_completed) / b.elapsed))
      .with("fg_arrivals", obs::JsonValue(b.fg_arrivals))
      .with("bg_generated", obs::JsonValue(b.bg_generated))
      .with("bg_dropped", obs::JsonValue(b.bg_dropped))
      .with("bg_completed", obs::JsonValue(b.bg_completed))
      .with("mean_response",
            obs::JsonValue(b.fg_completed
                               ? b.response_sum / static_cast<double>(b.fg_completed)
                               : 0.0));
  return e;
}

}  // namespace

SimMetrics simulate_fgbg(const core::FgBgParams& params, const SimConfig& config) {
  params.validate();
  PERFBG_REQUIRE(config.batches >= 2, "need at least two batches for a CI");
  PERFBG_REQUIRE(config.batch_time > 0.0 && config.warmup_time >= 0.0,
                 "times must be positive");
  obs::ScopedTimer run_timer(config.metrics, "sim.run");
  obs::ScopedSpan run_span("sim.run");
  run_span.attr("batches", obs::JsonValue(config.batches))
      .attr("batch_time", obs::JsonValue(config.batch_time));

  const double alpha = params.idle_wait_rate();
  const double p = params.bg_probability;
  const int x_cap = params.background_disabled() ? 0 : params.bg_buffer;

  std::mt19937_64 rng(config.seed);
  traffic::MapSampler arrivals(params.arrivals, config.seed ^ 0x9e3779b97f4a7c15ULL);
  const traffic::PhaseTypeSampler service_sampler(params.effective_service());
  auto service_draw = [&](std::mt19937_64& r) { return service_sampler.sample(r); };
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // A PH idle wait set on the params takes precedence over the config's
  // built-in idle-wait shapes (both exist so the simulator can model waits
  // the analytic chain cannot, and vice versa).
  const std::optional<traffic::PhaseTypeSampler> wait_sampler =
      params.idle_wait_distribution
          ? std::optional<traffic::PhaseTypeSampler>(*params.idle_wait_distribution)
          : std::nullopt;
  auto draw_idle_wait = [&]() {
    if (wait_sampler) return wait_sampler->sample(rng);
    switch (config.idle_wait) {
      case IdleWaitKind::kExponential: {
        std::exponential_distribution<double> d(alpha);
        return d(rng);
      }
      case IdleWaitKind::kErlang2: {
        std::exponential_distribution<double> d(2.0 * alpha);
        return d(rng) + d(rng);
      }
      case IdleWaitKind::kDeterministicish: {
        std::exponential_distribution<double> d(16.0 * alpha);
        double s = 0.0;
        for (int i = 0; i < 16; ++i) s += d(rng);
        return s;
      }
    }
    PERFBG_ASSERT(false, "unknown idle wait kind");
    return 0.0;
  };

  // ---- system state ----
  double now = 0.0;
  int y = 0, x = 0;
  Serving serving = Serving::kNone;
  double next_arrival = arrivals.next_interarrival();
  double next_completion = -1.0;   // < 0 means "not scheduled"
  double next_idle_expiry = -1.0;
  std::deque<double> fg_arrival_times;

  auto start_fg_service = [&]() {
    serving = Serving::kFg;
    next_completion = now + service_draw(rng);
    next_idle_expiry = -1.0;
  };
  auto start_bg_service = [&]() {
    serving = Serving::kBg;
    next_completion = now + service_draw(rng);
    next_idle_expiry = -1.0;
  };
  auto go_idle = [&]() {
    serving = Serving::kNone;
    next_completion = -1.0;
    next_idle_expiry = x > 0 ? now + draw_idle_wait() : -1.0;
  };

  // ---- measurement plumbing ----
  const double t_end =
      config.warmup_time + static_cast<double>(config.batches) * config.batch_time;
  bool in_warmup = config.warmup_time > 0.0;
  double batch_end = in_warmup ? config.warmup_time : config.batch_time;
  BatchAccum acc;
  std::vector<BatchAccum> finished;
  finished.reserve(static_cast<std::size_t>(config.batches));
  // Phase span: "sim.warmup" then one "sim.batch" per measurement batch.
  // ScopedSpan is non-movable, so the open/close cycle at batch boundaries
  // goes through optional::emplace (which ends the previous span first).
  std::optional<obs::ScopedSpan> phase_span;
  phase_span.emplace(in_warmup ? "sim.warmup" : "sim.batch");
  if (!in_warmup) phase_span->attr("batch", obs::JsonValue(std::int64_t{1}));
  ReservoirQuantiles response_quantiles(100000, config.seed ^ 0xA5A5A5A5ULL);

  auto integrate = [&](double upto) {
    const double dt = upto - now;
    acc.elapsed += dt;
    acc.qlen_fg_integral += dt * y;
    acc.qlen_bg_integral += dt * x;
    if (serving != Serving::kNone) acc.busy_integral += dt;
    if (serving == Serving::kBg) acc.bg_busy_integral += dt;
    if (serving == Serving::kNone) acc.idle_integral += dt;
  };

  while (now < t_end) {
    // Next event time.
    double te = next_arrival;
    int which = 0;  // 0 arrival, 1 completion, 2 idle expiry
    if (next_completion >= 0.0 && next_completion < te) {
      te = next_completion;
      which = 1;
    }
    if (next_idle_expiry >= 0.0 && next_idle_expiry < te) {
      te = next_idle_expiry;
      which = 2;
    }

    // Close any batch boundaries strictly before the event.
    while (te >= batch_end && now < t_end) {
      integrate(batch_end);
      now = batch_end;
      if (in_warmup) {
        in_warmup = false;
        // Warmup diagnostics: how much traffic the warmup absorbed and the
        // state it handed to the measurement window.
        if (config.metrics) {
          config.metrics->set("sim.warmup.time", config.warmup_time);
          config.metrics->set("sim.warmup.fg_arrivals",
                              static_cast<double>(acc.fg_arrivals));
          config.metrics->set("sim.warmup.bg_generated",
                              static_cast<double>(acc.bg_generated));
          config.metrics->set("sim.warmup.end_qlen_fg", static_cast<double>(y));
          config.metrics->set("sim.warmup.end_qlen_bg", static_cast<double>(x));
          config.metrics->set("sim.warmup.end_busy",
                              serving == Serving::kNone ? 0.0 : 1.0);
        }
      } else {
        finished.push_back(acc);
        if (config.batch_trace)
          config.batch_trace->record(
              batch_event(static_cast<int>(finished.size()), acc));
      }
      acc = BatchAccum{};
      batch_end += config.batch_time;
      if (now >= t_end) break;
      phase_span.emplace("sim.batch");
      phase_span->attr(
          "batch", obs::JsonValue(static_cast<std::int64_t>(finished.size() + 1)));
    }
    if (now >= t_end) break;

    integrate(te);
    now = te;

    switch (which) {
      case 0: {  // foreground arrival
        ++acc.fg_arrivals;
        if (serving == Serving::kBg) ++acc.fg_delayed;
        ++y;
        fg_arrival_times.push_back(now);
        if (serving == Serving::kNone) start_fg_service();  // cancels idle wait
        next_arrival = now + arrivals.next_interarrival();
        break;
      }
      case 1: {  // service completion
        if (serving == Serving::kFg) {
          --y;
          ++acc.fg_completed;
          const double response = now - fg_arrival_times.front();
          acc.response_sum += response;
          if (!in_warmup) response_quantiles.add(response);
          fg_arrival_times.pop_front();
          if (p > 0.0 && coin(rng) < p) {
            ++acc.bg_generated;
            if (x < x_cap)
              ++x;
            else
              ++acc.bg_dropped;
          }
          if (y > 0)
            start_fg_service();
          else
            go_idle();
        } else {  // background completion
          --x;
          ++acc.bg_completed;
          if (y > 0)
            start_fg_service();
          else
            go_idle();
        }
        break;
      }
      case 2: {  // idle wait expires: background service begins
        PERFBG_ASSERT(serving == Serving::kNone && y == 0 && x > 0,
                      "idle expiry in a non-idle state");
        ++acc.idle_expiries;
        start_bg_service();
        break;
      }
    }
  }

  phase_span.reset();  // close the last batch span before the reduction

  // ---- reduce batches ----
  BatchMeans qlen_fg, qlen_bg, completion, delayed, response, busy, bg_busy, idle, thr;
  SimMetrics out;
  std::uint64_t fg_completed_total = 0, fg_delayed_total = 0, idle_expiry_total = 0;
  for (const BatchAccum& b : finished) {
    fg_completed_total += b.fg_completed;
    fg_delayed_total += b.fg_delayed;
    idle_expiry_total += b.idle_expiries;
    qlen_fg.add_batch(b.qlen_fg_integral / b.elapsed);
    qlen_bg.add_batch(b.qlen_bg_integral / b.elapsed);
    busy.add_batch(b.busy_integral / b.elapsed);
    bg_busy.add_batch(b.bg_busy_integral / b.elapsed);
    idle.add_batch(b.idle_integral / b.elapsed);
    thr.add_batch(static_cast<double>(b.fg_completed) / b.elapsed);
    if (b.bg_generated > 0)
      completion.add_batch(1.0 - static_cast<double>(b.bg_dropped) /
                                     static_cast<double>(b.bg_generated));
    if (b.fg_arrivals > 0)
      delayed.add_batch(static_cast<double>(b.fg_delayed) /
                        static_cast<double>(b.fg_arrivals));
    if (b.fg_completed > 0)
      response.add_batch(b.response_sum / static_cast<double>(b.fg_completed));
    out.fg_arrivals += b.fg_arrivals;
    out.bg_generated += b.bg_generated;
    out.bg_dropped += b.bg_dropped;
    out.bg_completed += b.bg_completed;
  }
  out.fg_queue_length = qlen_fg.estimate();
  out.bg_queue_length = qlen_bg.estimate();
  out.bg_completion = completion.batches() > 0 ? completion.estimate()
                                               : Estimate{1.0, 0.0};
  out.fg_delayed_arrivals = delayed.estimate();
  out.fg_response_time = response.estimate();
  out.busy_fraction = busy.estimate();
  out.bg_busy_fraction = bg_busy.estimate();
  out.idle_fraction = idle.estimate();
  out.fg_throughput = thr.estimate();
  if (response_quantiles.count() > 0) {
    out.fg_response_p50 = response_quantiles.quantile(0.50);
    out.fg_response_p95 = response_quantiles.quantile(0.95);
    out.fg_response_p99 = response_quantiles.quantile(0.99);
  }
  // Event counters over the measurement window; deterministic given the seed.
  if (config.metrics) {
    obs::MetricsRegistry& m = *config.metrics;
    m.add("sim.events.fg_arrival", out.fg_arrivals);
    m.add("sim.events.fg_completion", fg_completed_total);
    m.add("sim.events.fg_delayed_arrival", fg_delayed_total);
    m.add("sim.events.bg_generated", out.bg_generated);
    m.add("sim.events.bg_dropped", out.bg_dropped);
    m.add("sim.events.bg_completion", out.bg_completed);
    m.add("sim.events.idle_expiry", idle_expiry_total);
    m.add("sim.batches", static_cast<std::uint64_t>(finished.size()));
  }
  return out;
}

}  // namespace perfbg::sim
