// Output analysis for the simulator: streaming means, time-weighted
// averages, and batch-means confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perfbg::sim {

/// Streaming mean/variance (Welford).
class OnlineMean {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 until two samples exist.
  double variance() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted average of a piecewise-constant process (queue lengths,
/// busy indicators): call advance(now, level) at every event with the level
/// that held since the previous call.
class TimeWeighted {
 public:
  explicit TimeWeighted(double start_time = 0.0) : last_time_(start_time) {}
  void advance(double now, double level_since_last);
  /// Resets the accumulation window (keeps the clock); used at warmup end.
  void reset(double now);
  double elapsed() const { return elapsed_; }
  double average() const { return elapsed_ > 0.0 ? integral_ / elapsed_ : 0.0; }

 private:
  double last_time_;
  double integral_ = 0.0;
  double elapsed_ = 0.0;
};

/// A point estimate with a confidence half-width.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% CI is mean +/- half_width
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  bool contains(double v) const { return v >= lo() && v <= hi(); }
};

/// Batch-means estimator: feed one value per batch, read a t-based 95% CI.
class BatchMeans {
 public:
  void add_batch(double value);
  std::size_t batches() const { return acc_.count(); }
  /// 95% confidence estimate; half-width is 0 with fewer than 2 batches.
  Estimate estimate() const;

 private:
  OnlineMean acc_;
};

/// Two-sided 97.5% Student-t quantile for the given degrees of freedom
/// (exact table for df <= 30, 1.96 asymptote beyond).
double t_quantile_975(std::size_t df);

/// Streaming quantile estimation by uniform reservoir sampling: keeps a
/// bounded random subsample of the observations (Vitter's algorithm R) and
/// answers quantile queries from the sorted reservoir. Deterministic for a
/// fixed seed and input sequence.
class ReservoirQuantiles {
 public:
  explicit ReservoirQuantiles(std::size_t capacity = 100000, std::uint64_t seed = 1);

  void add(double x);
  std::size_t count() const { return seen_; }

  /// The empirical q-quantile (q in [0,1]) of the reservoir; throws
  /// std::invalid_argument for q outside [0,1] or an empty reservoir.
  double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::size_t seen_ = 0;
  std::vector<double> sample_;

  std::uint64_t next_random();
};

}  // namespace perfbg::sim
