// Discrete-event simulation of the exact FG/BG mechanics the analytic model
// captures: MAP foreground arrivals, exponential non-preemptive service,
// probability-p background spawning into a finite buffer, and exponential
// idle wait before background service. Used to validate the QBD solution and
// to experiment with extensions the chain cannot express (e.g. non-
// exponential idle waits).
#pragma once

#include <cstdint>
#include <optional>

#include "core/params.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/statistics.hpp"

namespace perfbg::sim {

/// Idle-wait distribution options. The paper's model is exponential; Erlang
/// idle waits are an extension (lower variability, same mean).
enum class IdleWaitKind { kExponential, kErlang2, kDeterministicish };

struct SimConfig {
  double warmup_time = 2.0e5;   ///< model time units (ms for the paper setup)
  double batch_time = 5.0e5;    ///< length of each measurement batch
  int batches = 20;             ///< batch count for the batch-means CIs
  std::uint64_t seed = 20060625;
  IdleWaitKind idle_wait = IdleWaitKind::kExponential;

  // --- observability (both optional; the run is unchanged when null) ---
  /// Receives sim.events.* counters over the measurement window, warmup
  /// diagnostics as sim.warmup.* gauges, and the sim.run wall timer. All
  /// values except the timer are deterministic given (params, seed).
  obs::MetricsRegistry* metrics = nullptr;
  /// Receives one "sim.batch" event per finished measurement batch with the
  /// batch-local estimates (queue lengths, busy fraction, throughput, ...).
  obs::TraceSink* batch_trace = nullptr;
};

/// Point estimates (95% CIs) of the observable metrics.
struct SimMetrics {
  Estimate fg_queue_length;
  Estimate bg_queue_length;
  Estimate bg_completion;        ///< completed / generated BG jobs
  Estimate fg_delayed_arrivals;  ///< FG arrivals that find a BG job in service
  Estimate fg_response_time;
  Estimate busy_fraction;
  Estimate bg_busy_fraction;
  Estimate idle_fraction;
  Estimate fg_throughput;
  /// Response-time percentiles over the whole measurement window (reservoir
  /// sampled; point estimates without CIs).
  double fg_response_p50 = 0.0;
  double fg_response_p95 = 0.0;
  double fg_response_p99 = 0.0;
  // Raw totals over the whole measurement window (diagnostics).
  std::uint64_t fg_arrivals = 0;
  std::uint64_t bg_generated = 0;
  std::uint64_t bg_dropped = 0;
  std::uint64_t bg_completed = 0;
};

/// Runs the simulation for the given parameters and returns batch-means
/// estimates. Deterministic given (params, config.seed).
SimMetrics simulate_fgbg(const core::FgBgParams& params, const SimConfig& config);

}  // namespace perfbg::sim
