// IO fault injectors for the perfbgd socket layer (server::IoFaultInjector).
//
// Two flavours share the one production seam:
//
//   ScriptedIoFaults — hand-placed scripts (short reads, EAGAIN storms,
//     EOF-after-N, reset-after-N) for unit tests that need one precise
//     misbehaviour at one precise moment. Promoted here from
//     tests/fault_injection.hpp so examples and tests link one
//     implementation instead of sharing a header copy.
//
//   PlannedIoFaults — a FaultPlan adapter: every read/write crossing consults
//     the plan's io.* seams, so socket chaos replays from the same
//     `--chaos-seed` as the in-process failpoints. Seams:
//       io.read.eof        read reports EOF (mid-frame disconnect)
//       io.read.eagain     read fails with EAGAIN (absorbed by io_read)
//       io.read.short      read length capped at the seam's value bytes
//       io.write.reset     write fails with ECONNRESET
//       io.write.delay_ms  write stalls the seam's value in ms, then proceeds
//
// Install with install_io_fault_injector(&faults) before starting the daemon
// and clear (nullptr) after stopping it. All state is atomic: the injector is
// consulted concurrently from every connection/worker thread, and the suite
// runs under -fsanitize=thread in CI.
#pragma once

#include <errno.h>

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "chaos/fault_plan.hpp"
#include "server/io.hpp"

namespace perfbg::chaos {

/// Scripted misbehaviour for the daemon's read/write paths:
///   - short reads: cap every recv at `max_read_chunk` bytes, so frames
///     arrive one sliver at a time and the LineReader must reassemble;
///   - EAGAIN storms: the first `read_eagain_storms` reads fail with EAGAIN
///     (io_read must absorb and retry, not error the connection);
///   - mid-frame disconnect: reads report EOF after `read_eof_after` read
///     calls have been admitted;
///   - write resets: writes fail with ECONNRESET after `write_reset_after`
///     write calls (a peer vanishing mid-response must drop one connection,
///     never the daemon).
class ScriptedIoFaults : public server::IoFaultInjector {
 public:
  static constexpr std::uint64_t kNever = UINT64_MAX;

  std::size_t max_read_chunk = 0;  ///< 0 = unlimited
  std::atomic<std::int64_t> read_eagain_storms{0};
  std::atomic<std::uint64_t> read_eof_after{kNever};
  std::atomic<std::uint64_t> write_reset_after{kNever};

  std::atomic<std::uint64_t> reads{0};   ///< read calls observed
  std::atomic<std::uint64_t> writes{0};  ///< write calls observed

  bool on_read(int fd, std::size_t& len, ssize_t& result, int& err) override;
  bool on_write(int fd, std::size_t& len, ssize_t& result, int& err) override;
};

/// FaultPlan-driven socket chaos (seams listed in the header comment). The
/// plan outlives the injector; both are installed/cleared around the daemon's
/// lifetime by the chaos driver.
class PlannedIoFaults : public server::IoFaultInjector {
 public:
  explicit PlannedIoFaults(FaultPlan& plan) : plan_(&plan) {}

  bool on_read(int fd, std::size_t& len, ssize_t& result, int& err) override;
  bool on_write(int fd, std::size_t& len, ssize_t& result, int& err) override;

 private:
  FaultPlan* plan_;
};

/// RAII installer so a throwing test cannot leave the process-global hook
/// pointing at a dead injector.
class ScopedIoFaults {
 public:
  explicit ScopedIoFaults(server::IoFaultInjector& faults) {
    server::install_io_fault_injector(&faults);
  }
  ~ScopedIoFaults() { server::install_io_fault_injector(nullptr); }
  ScopedIoFaults(const ScopedIoFaults&) = delete;
  ScopedIoFaults& operator=(const ScopedIoFaults&) = delete;
};

}  // namespace perfbg::chaos
