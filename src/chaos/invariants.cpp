#include "chaos/invariants.hpp"

#include <utility>

namespace perfbg::chaos {

void InvariantChecker::add_violation_locked(std::string invariant,
                                            std::string detail) {
  ++violation_count_;
  if (violations_.size() < kMaxDetailedViolations)
    violations_.push_back(Violation{std::move(invariant), std::move(detail)});
}

void InvariantChecker::on_response(const std::string& key,
                                   const std::string& trace,
                                   const std::string& payload, bool ok,
                                   bool cached, bool coalesced) {
  if (!ok) return;  // error responses carry no payload contract
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  KeyState& state = keys_[key];
  if (state.payload.empty()) {
    state.payload = payload;
  } else if (state.payload != payload) {
    add_violation_locked(
        "divergent_payload",
        "key '" + key + "' trace " + trace + ": got '" + payload +
            "', previously '" + state.payload + "'");
  }
  if (!cached && !coalesced) {
    // A leader execution acknowledged to a client: the daemon journaled it
    // (fsync'd) before completing the flight, so it must survive any kill
    // that happens from now on.
    state.acked_leader = true;
    if (!trace.empty()) state.acked_traces.insert(trace);
  }
}

void InvariantChecker::check_journal(const runner::JournalIndex& index) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, state] : keys_) {
    if (!state.acked_leader) continue;
    ++checks_;
    const runner::JournalRecord* record = index.find(key);
    if (record == nullptr) {
      add_violation_locked("lost_ack",
                           "key '" + key + "' was acked by a leader execution "
                           "but is missing from journal '" + index.path() + "'");
      continue;
    }
    if (record->ok() && record->payload.dump() != state.payload) {
      add_violation_locked(
          "journal_divergence",
          "key '" + key + "': journal has '" + record->payload.dump() +
              "', clients saw '" + state.payload + "'");
    }
  }
}

void InvariantChecker::check_warm_start(const std::string& key,
                                        const std::string& payload,
                                        bool cached) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (!cached) {
    add_violation_locked("warm_start",
                         "journaled key '" + key +
                             "' was served cold (cached=false) after restart");
  }
  const auto it = keys_.find(key);
  if (it != keys_.end() && !it->second.payload.empty() &&
      it->second.payload != payload) {
    add_violation_locked("warm_start",
                         "key '" + key + "': warm-started payload '" + payload +
                             "' != pre-kill payload '" + it->second.payload + "'");
  }
}

void InvariantChecker::check_counters(int life, std::uint64_t total,
                                      std::uint64_t ok, std::uint64_t error) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (total != ok + error) {
    add_violation_locked(
        "counter_conservation",
        "life " + std::to_string(life) + ": requests.total=" +
            std::to_string(total) + " != ok+error=" + std::to_string(ok + error));
  }
}

std::uint64_t InvariantChecker::checks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_;
}

std::uint64_t InvariantChecker::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violation_count_;
}

std::vector<Violation> InvariantChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

obs::JsonValue InvariantChecker::report_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonValue v = obs::JsonValue::object();
  v.set("checks", obs::JsonValue(checks_));
  v.set("violations", obs::JsonValue(violation_count_));
  obs::JsonValue details = obs::JsonValue::array();
  for (const Violation& violation : violations_) {
    obs::JsonValue d = obs::JsonValue::object();
    d.set("invariant", obs::JsonValue(violation.invariant));
    d.set("detail", obs::JsonValue(violation.detail));
    details.push_back(std::move(d));
  }
  v.set("details", std::move(details));
  return v;
}

}  // namespace perfbg::chaos
