// The crash-recovery contract, as executable checks (DESIGN.md §15).
//
// The soak driver (examples/perfbgd_chaos.cpp) feeds one InvariantChecker
// every response its client herds collect across every daemon life, then
// audits the survivors after each kill. The contract it asserts:
//
//   lost_ack            Every OK response served by a *leader execution*
//                       (cached=false, coalesced=false — the daemon solved it
//                       and journals it before completing the flight) must
//                       appear in the journal that survives the kill.
//   divergent_payload   A key answered twice must be answered byte-identically
//                       (solver determinism end to end: leader, cache hits,
//                       coalesced followers, warm-started lives).
//   journal_divergence  The journaled payload for a key must byte-match what
//                       clients were told.
//   warm_start          After a restart with --warm-start, a key that was in
//                       the journal must be served cached:true with the same
//                       payload as before the kill.
//   counter_conservation  statusz must satisfy requests.total == ok + error
//                       at every scrape (no request vanishes between the
//                       admission counter and an outcome counter).
//
// Payload strings are the compact dump of the response's `result` object,
// which excludes timing fields — byte comparison is meaningful.
//
// Thread-safe: client herd threads call on_response() concurrently; the
// driver calls the check_*() audits between lives.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "runner/journal.hpp"

namespace perfbg::chaos {

struct Violation {
  std::string invariant;  ///< which contract clause broke (names above)
  std::string detail;     ///< key, traces, and both byte strings where useful
};

class InvariantChecker {
 public:
  /// At most this many violations keep their detail text; the count keeps
  /// running past it (one broken invariant usually breaks it thousands of
  /// times — the first few repros are what matter).
  static constexpr std::size_t kMaxDetailedViolations = 256;

  /// A response a client collected. `payload` is the compact dump of the
  /// response's result object ("" for error responses).
  void on_response(const std::string& key, const std::string& trace,
                   const std::string& payload, bool ok, bool cached,
                   bool coalesced);

  /// After a life ends: every acked leader execution must be in `index`.
  void check_journal(const runner::JournalIndex& index);

  /// A warm-start probe at life start for a key the journal holds: must be
  /// served from cache, byte-identical to what clients saw before the kill.
  void check_warm_start(const std::string& key, const std::string& payload,
                        bool cached);

  /// statusz conservation at a scrape: requests.total == ok + error.
  void check_counters(int life, std::uint64_t total, std::uint64_t ok,
                      std::uint64_t error);

  std::uint64_t checks() const;
  std::uint64_t violation_count() const;
  /// The detailed violations (bounded by kMaxDetailedViolations).
  std::vector<Violation> violations() const;
  /// {"checks": N, "violations": N, "details": [...]} for the soak report.
  obs::JsonValue report_json() const;

 private:
  struct KeyState {
    std::string payload;  ///< first OK payload seen; all others must match
    std::set<std::string> acked_traces;  ///< traces of acked leader executions
    bool acked_leader = false;
  };

  void add_violation_locked(std::string invariant, std::string detail);

  mutable std::mutex mu_;
  std::map<std::string, KeyState> keys_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace perfbg::chaos
