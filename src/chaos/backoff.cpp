#include "chaos/backoff.hpp"

#include <algorithm>

#include "chaos/fault_plan.hpp"  // splitmix64_next

namespace perfbg::chaos {

DecorrelatedJitter::DecorrelatedJitter(double base_ms, double cap_ms,
                                       std::uint64_t seed)
    : base_ms_(base_ms < 0.0 ? 0.0 : base_ms),
      cap_ms_(std::max(cap_ms, base_ms_)),
      prev_ms_(base_ms_),
      state_(seed) {}

double DecorrelatedJitter::next_ms() {
  ++draws_;
  const std::uint64_t x = splitmix64_next(state_);
  const double u = static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  const double hi = std::max(base_ms_, prev_ms_ * 3.0);
  prev_ms_ = std::min(cap_ms_, base_ms_ + u * (hi - base_ms_));
  return prev_ms_;
}

void DecorrelatedJitter::reset() { prev_ms_ = base_ms_; }

}  // namespace perfbg::chaos
