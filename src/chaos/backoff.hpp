// Decorrelated-jitter retry backoff (the AWS architecture-blog variant):
//
//   sleep = min(cap, uniform(base, prev * 3))
//
// Compared with plain exponential backoff it spreads retries of a client herd
// apart (no synchronized retry waves after a daemon restart) while still
// growing the expected wait geometrically under sustained refusal. Driven by
// splitmix64 from an explicit seed so a chaos run's reconnect timing replays
// with the run.
//
// Not thread-safe: one instance per retrying actor (each loadgen client owns
// its own, seeded from the run seed and its client index).
#pragma once

#include <cstdint>

namespace perfbg::chaos {

class DecorrelatedJitter {
 public:
  /// `base_ms` is the floor and first-retry scale, `cap_ms` the ceiling.
  DecorrelatedJitter(double base_ms, double cap_ms, std::uint64_t seed);

  /// The next sleep in ms; advances the sequence.
  double next_ms();

  /// Back to the cold state (next next_ms() draws near base again). The
  /// cumulative draw count keeps running.
  void reset();

  std::uint64_t draws() const { return draws_; }

 private:
  double base_ms_;
  double cap_ms_;
  double prev_ms_;
  std::uint64_t state_;
  std::uint64_t draws_ = 0;
};

}  // namespace perfbg::chaos
