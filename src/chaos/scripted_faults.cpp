#include "chaos/scripted_faults.hpp"

#include <chrono>
#include <thread>

namespace perfbg::chaos {

bool ScriptedIoFaults::on_read(int, std::size_t& len, ssize_t& result, int& err) {
  const std::uint64_t n = reads.fetch_add(1, std::memory_order_relaxed);
  if (read_eagain_storms.fetch_sub(1, std::memory_order_relaxed) > 0) {
    result = -1;
    err = EAGAIN;
    return true;
  }
  read_eagain_storms.store(0, std::memory_order_relaxed);
  if (n >= read_eof_after.load(std::memory_order_relaxed)) {
    result = 0;  // simulated orderly disconnect
    return true;
  }
  if (max_read_chunk > 0 && len > max_read_chunk) len = max_read_chunk;
  return false;  // real recv, possibly shortened
}

bool ScriptedIoFaults::on_write(int, std::size_t&, ssize_t& result, int& err) {
  const std::uint64_t n = writes.fetch_add(1, std::memory_order_relaxed);
  if (n >= write_reset_after.load(std::memory_order_relaxed)) {
    result = -1;
    err = ECONNRESET;
    return true;
  }
  return false;
}

bool PlannedIoFaults::on_read(int, std::size_t& len, ssize_t& result, int& err) {
  if (plan_->evaluate("io.read.eof") != 0) {
    result = 0;
    return true;
  }
  if (plan_->evaluate("io.read.eagain") != 0) {
    result = -1;
    err = EAGAIN;
    return true;
  }
  if (const std::int64_t cap = plan_->evaluate("io.read.short");
      cap > 0 && len > static_cast<std::size_t>(cap)) {
    len = static_cast<std::size_t>(cap);
  }
  return false;
}

bool PlannedIoFaults::on_write(int, std::size_t&, ssize_t& result, int& err) {
  if (plan_->evaluate("io.write.reset") != 0) {
    result = -1;
    err = ECONNRESET;
    return true;
  }
  if (const std::int64_t delay_ms = plan_->evaluate("io.write.delay_ms");
      delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return false;
}

}  // namespace perfbg::chaos
