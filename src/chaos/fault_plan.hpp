// Deterministic, seed-driven fault schedules (DESIGN.md §15).
//
// A FaultPlan is the chaos engine's brain: a FailpointHook whose per-seam
// fire/no-fire decisions are a pure function of (seed, seam name, per-seam
// crossing index). Nothing is drawn from a shared PRNG stream, so two threads
// racing through different seams cannot perturb each other's schedules: as
// long as the workload drives each seam through the same crossing sequence,
// the same seed reproduces the same faults byte-exactly. That is the replay
// contract behind `--chaos-seed`: a soak failure report names the seed, and
// re-running with it rebuilds the identical schedule.
//
// A plan is a list of FaultSpec entries, usually parsed from a compact spec
// string (the `--chaos-faults` flag):
//
//   seam:rate[:value[:after]][,seam:rate...]
//
//   server.cache.insert:0.01            1% of cache inserts fail
//   server.worker.stall_ms:0.005:250    0.5% of solves stall 250 ms
//   io.write.reset:0.002:1:100          after 100 writes, 0.2% reset
//
// Every fired fault is logged (bounded, allocation-free at fire time) with
// its per-seam crossing index and its global schedule index, so a failure can
// be pinned to "the 17th fault fired, crossing 412 of io.write.reset" and the
// replay verified fault-for-fault.
//
// The seams themselves live in production code: failpoint() calls (see
// util/failpoint.hpp for the registry) and the io.* seams that
// chaos::PlannedIoFaults drives through server's IoFaultInjector hook.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/failpoint.hpp"

namespace perfbg::chaos {

/// The canonical splitmix64 step: advances `state` and returns the output.
/// Used for every chaos draw (fault schedules, jitter, per-life sub-seeds)
/// so determinism rests on one small, well-known generator.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// A decorrelated child seed for stream `stream` of `seed` (per-life seeds,
/// per-client seeds). Pure function; no shared state.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

/// One scheduled fault source.
struct FaultSpec {
  std::string seam;        ///< failpoint/io seam name, e.g. "server.cache.insert"
  double rate = 0.0;       ///< fire probability per crossing, in [0, 1]
  std::int64_t value = 1;  ///< magnitude handed to the seam when fired
  std::uint64_t after = 0; ///< skip this many crossings before arming
};

/// One fault that actually fired, for the replay log.
struct FiredFault {
  std::string seam;
  std::uint64_t call_index = 0;      ///< per-seam crossing index (0-based)
  std::uint64_t schedule_index = 0;  ///< global fire ordinal (1-based)
  std::int64_t value = 0;
};

class FaultPlan : public FailpointHook {
 public:
  /// At most this many fired faults are kept in the replay log (the count
  /// keeps running past it). Reserved up front so firing never allocates.
  static constexpr std::size_t kMaxLoggedFaults = 4096;

  FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs);

  /// Parses the `--chaos-faults` spec string (format above; "" = no faults).
  /// Throws std::invalid_argument naming the offending token.
  static std::vector<FaultSpec> parse_specs(const std::string& text);

  /// FailpointHook: decides deterministically whether seam `name` fires at
  /// its current crossing. Thread-safe, non-throwing, allocation-free.
  std::int64_t evaluate(const char* name) noexcept override;

  std::uint64_t seed() const { return seed_; }
  std::uint64_t fired_count() const {
    return fired_count_.load(std::memory_order_relaxed);
  }
  /// Crossings observed for `seam` so far (0 when unregistered).
  std::uint64_t crossings(std::string_view seam) const;
  /// Snapshot of the (bounded) fired-fault log, oldest first.
  std::vector<FiredFault> fired_log() const;
  /// {"seed": "0x...", "fired": N, "logged": M, "faults": [...]} — what the
  /// daemon prints at drain and the soak driver attaches to a failure report.
  obs::JsonValue log_json() const;

 private:
  struct SeamState {
    explicit SeamState(FaultSpec s);
    FaultSpec spec;
    std::uint64_t name_hash = 0;  ///< FNV-1a of the seam name, mixed per draw
    std::atomic<std::uint64_t> crossings{0};
  };
  /// Log entries reference the map node's key (stable for the plan's life)
  /// so firing records nothing but trivially-copyable words.
  struct LogEntry {
    const std::string* seam;
    std::uint64_t call_index;
    std::uint64_t schedule_index;
    std::int64_t value;
  };

  std::uint64_t seed_;
  std::map<std::string, SeamState, std::less<>> seams_;
  std::atomic<std::uint64_t> fired_count_{0};
  mutable std::mutex log_mu_;
  std::vector<LogEntry> log_;
};

/// RAII: installs the plan as the process failpoint hook for a scope.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan& plan) { install_failpoint_hook(&plan); }
  ~ScopedFaultPlan() { install_failpoint_hook(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace perfbg::chaos
