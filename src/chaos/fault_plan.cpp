#include "chaos/fault_plan.hpp"

#include <stdexcept>
#include <utility>

#include "runner/journal.hpp"  // fnv1a64, hash_hex

namespace perfbg::chaos {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  return splitmix64_next(state);
}

namespace {

/// Uniform double in [0, 1) from one splitmix64 output (53 mantissa bits).
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

FaultPlan::SeamState::SeamState(FaultSpec s) : spec(std::move(s)) {
  name_hash = runner::fnv1a64(spec.seam);
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs)
    : seed_(seed) {
  log_.reserve(kMaxLoggedFaults);
  for (FaultSpec& spec : specs) {
    std::string seam = spec.seam;
    seams_.try_emplace(std::move(seam), std::move(spec));
  }
}

std::vector<FaultSpec> FaultPlan::parse_specs(const std::string& text) {
  std::vector<FaultSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(start, end - start);
    start = end + 1;
    if (token.find_first_not_of(" \t") == std::string::npos) continue;

    FaultSpec spec;
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= token.size()) {
      std::size_t q = token.find(':', p);
      if (q == std::string::npos) q = token.size();
      parts.push_back(token.substr(p, q - p));
      p = q + 1;
    }
    if (parts.size() < 2 || parts.size() > 4)
      throw std::invalid_argument("chaos fault spec '" + token +
                                  "': want seam:rate[:value[:after]]");
    spec.seam = parts[0];
    if (spec.seam.empty())
      throw std::invalid_argument("chaos fault spec '" + token + "': empty seam");
    try {
      std::size_t used = 0;
      spec.rate = std::stod(parts[1], &used);
      if (used != parts[1].size()) throw std::invalid_argument("rate");
      if (parts.size() > 2) {
        spec.value = std::stoll(parts[2], &used);
        if (used != parts[2].size()) throw std::invalid_argument("value");
      }
      if (parts.size() > 3) {
        const long long after = std::stoll(parts[3], &used);
        if (used != parts[3].size() || after < 0) throw std::invalid_argument("after");
        spec.after = static_cast<std::uint64_t>(after);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("chaos fault spec '" + token +
                                  "': unparseable number");
    }
    if (!(spec.rate >= 0.0 && spec.rate <= 1.0))
      throw std::invalid_argument("chaos fault spec '" + token +
                                  "': rate must be in [0, 1]");
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::int64_t FaultPlan::evaluate(const char* name) noexcept {
  const auto it = seams_.find(std::string_view(name));
  if (it == seams_.end()) return 0;
  SeamState& seam = it->second;
  const std::uint64_t idx =
      seam.crossings.fetch_add(1, std::memory_order_relaxed);
  if (idx < seam.spec.after) return 0;
  if (seam.spec.rate <= 0.0) return 0;
  if (seam.spec.rate < 1.0) {
    // Stateless draw: hash (seed, seam, crossing index) so the decision for
    // crossing N of a seam is fixed at construction, whatever the thread
    // interleaving across *other* seams looks like.
    std::uint64_t state = derive_seed(seed_ ^ seam.name_hash, idx);
    if (to_unit(splitmix64_next(state)) >= seam.spec.rate) return 0;
  }
  const std::uint64_t ordinal =
      fired_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    if (log_.size() < kMaxLoggedFaults)
      log_.push_back(LogEntry{&it->first, idx, ordinal, seam.spec.value});
  }
  return seam.spec.value;
}

std::uint64_t FaultPlan::crossings(std::string_view seam) const {
  const auto it = seams_.find(seam);
  if (it == seams_.end()) return 0;
  return it->second.crossings.load(std::memory_order_relaxed);
}

std::vector<FiredFault> FaultPlan::fired_log() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<FiredFault> out;
  out.reserve(log_.size());
  for (const LogEntry& e : log_)
    out.push_back(FiredFault{*e.seam, e.call_index, e.schedule_index, e.value});
  return out;
}

obs::JsonValue FaultPlan::log_json() const {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("seed", obs::JsonValue(runner::hash_hex(seed_)));
  v.set("fired", obs::JsonValue(static_cast<std::int64_t>(fired_count())));
  obs::JsonValue faults = obs::JsonValue::array();
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    v.set("logged", obs::JsonValue(static_cast<std::int64_t>(log_.size())));
    for (const LogEntry& e : log_) {
      obs::JsonValue f = obs::JsonValue::object();
      f.set("seam", obs::JsonValue(*e.seam));
      f.set("call", obs::JsonValue(static_cast<std::int64_t>(e.call_index)));
      f.set("schedule", obs::JsonValue(static_cast<std::int64_t>(e.schedule_index)));
      f.set("value", obs::JsonValue(e.value));
      faults.push_back(std::move(f));
    }
  }
  v.set("faults", std::move(faults));
  return v;
}

}  // namespace perfbg::chaos
