#include "markov/stationary.hpp"

#include <cmath>
#include <sstream>

#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace perfbg::markov {

bool is_generator(const Matrix& q, double tol) {
  if (!q.is_square() || q.empty()) return false;
  for (std::size_t i = 0; i < q.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < q.cols(); ++j) {
      const double v = q(i, j);
      if (i == j) {
        if (v > tol) return false;
      } else if (v < -tol) {
        return false;
      }
      s += v;
    }
    if (std::abs(s) > tol * std::max(1.0, std::abs(q(i, i)))) return false;
  }
  return true;
}

bool is_stochastic(const Matrix& p, double tol) {
  if (!p.is_square() || p.empty()) return false;
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      if (p(i, j) < -tol) return false;
      s += p(i, j);
    }
    if (std::abs(s - 1.0) > tol) return false;
  }
  return true;
}

namespace {

// GTH elimination on the off-diagonal rates of a generator-shaped matrix.
// Only off-diagonal entries are read (the diagonal is implied by row sums),
// which is what makes the algorithm subtraction-free.
Vector gth(Matrix q) {
  const std::size_t n = q.rows();
  if (n == 1) return Vector{1.0};
  obs::ScopedSpan span("markov.gth");
  span.attr("n", obs::JsonValue(static_cast<std::int64_t>(n)));

  // Forward elimination: fold state k into states < k. Scaling the incoming
  // column q(·,k) by 1/S (S = total rate out of k toward lower states) both
  // performs the censoring update and leaves exactly the factor needed for
  // the back substitution x[k] = Σ_{i<k} x[i] q(i,k).
  for (std::size_t k = n; k-- > 1;) {
    double out_rate = 0.0;
    for (std::size_t j = 0; j < k; ++j) out_rate += q(k, j);
    if (out_rate <= 0.0) {
      std::ostringstream os;
      os << "GTH: zero pivot while folding state " << k << " of " << n
         << " (total rate toward lower-numbered states is " << out_rate
         << "; chain not irreducible)";
      ErrorContext ctx;
      ctx.matrix_size = n;
      throw Error(ErrorCode::kSingularMatrix, os.str(), ctx);
    }
    for (std::size_t i = 0; i < k; ++i) q(i, k) /= out_rate;
    for (std::size_t i = 0; i < k; ++i) {
      const double qik = q(i, k);
      if (qik == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) q(i, j) += qik * q(k, j);
    }
  }

  // Back substitution.
  Vector x(n, 0.0);
  x[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i) s += x[i] * q(i, k);
    x[k] = s;
  }
  const double total = linalg::sum(x);
  for (double& v : x) v /= total;
  return x;
}

}  // namespace

Vector stationary_ctmc(const Matrix& q, double tol) {
  PERFBG_REQUIRE(is_generator(q, tol), "stationary_ctmc requires an infinitesimal generator");
  // GTH reads only off-diagonal rates; zero the diagonal defensively.
  Matrix m = q;
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) = 0.0;
  return gth(std::move(m));
}

Vector stationary_dtmc(const Matrix& p, double tol) {
  PERFBG_REQUIRE(is_stochastic(p, tol), "stationary_dtmc requires a stochastic matrix");
  // Off-diagonal probabilities of P serve as rates; GTH ignores the diagonal.
  Matrix m = p;
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) = 0.0;
  return gth(std::move(m));
}

namespace {

// Iterative Tarjan SCC over the positive off-diagonal entries of q.
std::vector<std::vector<std::size_t>> strongly_connected_components(const Matrix& q) {
  const std::size_t n = q.rows();
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  int counter = 0;

  struct Frame {
    std::size_t v;
    std::size_t next_child;
  };
  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> call_stack{{start, 0}};
    index[start] = low[start] = counter++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      bool descended = false;
      for (std::size_t w = f.next_child; w < n; ++w) {
        if (w == f.v || q(f.v, w) <= 0.0) continue;
        f.next_child = w + 1;
        if (index[w] == -1) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[f.v] = std::min(low[f.v], index[w]);
      }
      if (descended) continue;
      // All children explored: pop.
      const std::size_t v = f.v;
      call_stack.pop_back();
      if (!call_stack.empty())
        low[call_stack.back().v] = std::min(low[call_stack.back().v], low[v]);
      if (low[v] == index[v]) {
        std::vector<std::size_t> comp;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        sccs.push_back(std::move(comp));
      }
    }
  }
  return sccs;
}

}  // namespace

std::vector<std::vector<std::size_t>> closed_classes(const Matrix& q) {
  PERFBG_REQUIRE(q.is_square() && !q.empty(), "closed_classes requires a square matrix");
  const auto sccs = strongly_connected_components(q);
  std::vector<std::vector<std::size_t>> closed;
  for (const auto& comp : sccs) {
    std::vector<bool> in_comp(q.rows(), false);
    for (std::size_t v : comp) in_comp[v] = true;
    bool leaves = false;
    for (std::size_t v : comp) {
      for (std::size_t w = 0; w < q.cols() && !leaves; ++w)
        if (w != v && !in_comp[w] && q(v, w) > 0.0) leaves = true;
      if (leaves) break;
    }
    if (!leaves) closed.push_back(comp);
  }
  PERFBG_ASSERT(!closed.empty(), "a finite chain always has a closed class");
  return closed;
}

std::vector<std::size_t> closed_class(const Matrix& q) {
  auto closed = closed_classes(q);
  if (closed.size() != 1) {
    ErrorContext ctx;
    ctx.matrix_size = q.rows();
    throw Error(ErrorCode::kInvalidModel,
                "chain has " + std::to_string(closed.size()) +
                    " closed classes; stationary distribution is not unique",
                ctx);
  }
  return closed.front();
}

Vector stationary_on_class(const Matrix& q, const std::vector<std::size_t>& cls, double tol) {
  PERFBG_REQUIRE(!cls.empty(), "class must be non-empty");
  if (cls.size() == q.rows()) return stationary_ctmc(q, tol);
  // The restriction of a generator to a closed class is itself a generator.
  Matrix sub(cls.size(), cls.size(), 0.0);
  for (std::size_t i = 0; i < cls.size(); ++i)
    for (std::size_t j = 0; j < cls.size(); ++j) sub(i, j) = q(cls[i], cls[j]);
  const Vector x = stationary_ctmc(sub, tol);
  Vector out(q.rows(), 0.0);
  for (std::size_t i = 0; i < cls.size(); ++i) out[cls[i]] = x[i];
  return out;
}

Vector stationary_unichain_ctmc(const Matrix& q, double tol) {
  PERFBG_REQUIRE(is_generator(q, tol), "stationary_unichain_ctmc requires a generator");
  return stationary_on_class(q, closed_class(q), tol);
}

}  // namespace perfbg::markov
