// Transient analysis of finite CTMCs via uniformization (Jensen's method).
//
// Used by the test suite to sanity-check generators built by the chain
// builder (a transient sweep from any start vector must stay a probability
// vector and converge to the GTH stationary solution).
#pragma once

#include "linalg/matrix.hpp"

namespace perfbg::markov {

using linalg::Matrix;
using linalg::Vector;

/// Computes pi0 * exp(Q t) by uniformization with truncation error below
/// `epsilon` (left tail + right tail of the Poisson weights).
///
/// Throws std::invalid_argument if q is not a generator or pi0 is not a
/// probability vector of matching size.
Vector transient_ctmc(const Matrix& q, const Vector& pi0, double t, double epsilon = 1e-12);

/// The uniformized DTMC P = I + Q / rate for rate >= max_i |q_ii|.
Matrix uniformize(const Matrix& q, double rate);

}  // namespace perfbg::markov
