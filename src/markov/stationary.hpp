// Stationary analysis of finite Markov chains.
//
// The numerically robust core is the Grassmann–Taksar–Heyman (GTH) variant of
// Gaussian elimination, which uses no subtractions and therefore cannot lose
// probability mass to cancellation — the standard tool for the small CTMCs
// embedded in this project (MMPP phase processes, boundary chains, truncated
// validation chains).
#pragma once

#include "linalg/matrix.hpp"

namespace perfbg::markov {

using linalg::Matrix;
using linalg::Vector;

/// True iff q is square, has nonnegative off-diagonal entries, nonpositive
/// diagonal entries, and rows summing to 0 within `tol`.
bool is_generator(const Matrix& q, double tol = 1e-9);

/// True iff p is square, elementwise nonnegative, with rows summing to 1
/// within `tol` (a stochastic matrix).
bool is_stochastic(const Matrix& p, double tol = 1e-9);

/// Stationary distribution of an irreducible CTMC generator: x Q = 0, x·1 = 1,
/// computed with GTH elimination. Throws std::invalid_argument if q is not a
/// generator and perfbg::Error{kSingularMatrix} naming the folded state and
/// dimension if elimination hits a zero pivot (reducible chain).
Vector stationary_ctmc(const Matrix& q, double tol = 1e-9);

/// Stationary distribution of an irreducible DTMC: x P = x, x·1 = 1, via GTH
/// on (P - I).
Vector stationary_dtmc(const Matrix& p, double tol = 1e-9);

/// Stationary distribution of a CTMC that need not be irreducible but must
/// be *unichain* (exactly one closed communicating class; other states are
/// transient and receive probability zero). Finds the closed class by
/// strongly-connected-component analysis, then runs GTH on it. Throws
/// perfbg::Error{kInvalidModel} if there are multiple closed classes (the
/// stationary distribution would not be unique).
Vector stationary_unichain_ctmc(const Matrix& q, double tol = 1e-9);

/// Indices of the states forming the unique closed communicating class of q
/// (throws perfbg::Error{kInvalidModel} when there is more than one closed
/// class).
std::vector<std::size_t> closed_class(const Matrix& q);

/// All closed communicating classes of q (at least one always exists).
std::vector<std::vector<std::size_t>> closed_classes(const Matrix& q);

/// Stationary distribution of the CTMC restricted to one closed class,
/// embedded back into the full state space (zeros elsewhere).
Vector stationary_on_class(const Matrix& q, const std::vector<std::size_t>& cls,
                           double tol = 1e-9);

}  // namespace perfbg::markov
