#include "markov/transient.hpp"

#include <cmath>

#include "markov/stationary.hpp"
#include "util/check.hpp"

namespace perfbg::markov {

Matrix uniformize(const Matrix& q, double rate) {
  PERFBG_REQUIRE(q.is_square(), "uniformize requires a square matrix");
  double max_diag = 0.0;
  for (std::size_t i = 0; i < q.rows(); ++i) max_diag = std::max(max_diag, -q(i, i));
  PERFBG_REQUIRE(rate >= max_diag && rate > 0.0,
                 "uniformization rate must dominate every exit rate");
  Matrix p = q;
  p *= 1.0 / rate;
  for (std::size_t i = 0; i < p.rows(); ++i) p(i, i) += 1.0;
  return p;
}

Vector transient_ctmc(const Matrix& q, const Vector& pi0, double t, double epsilon) {
  PERFBG_REQUIRE(is_generator(q), "transient_ctmc requires an infinitesimal generator");
  PERFBG_REQUIRE(pi0.size() == q.rows(), "initial vector size mismatch");
  PERFBG_REQUIRE(t >= 0.0, "time must be nonnegative");
  double mass = 0.0;
  for (double v : pi0) {
    PERFBG_REQUIRE(v >= -1e-12, "initial vector must be nonnegative");
    mass += v;
  }
  PERFBG_REQUIRE(std::abs(mass - 1.0) < 1e-9, "initial vector must sum to 1");
  if (t == 0.0) return pi0;

  double rate = 0.0;
  for (std::size_t i = 0; i < q.rows(); ++i) rate = std::max(rate, -q(i, i));
  if (rate == 0.0) return pi0;  // absorbing-everywhere chain: nothing moves
  rate *= 1.02;                 // slight over-uniformization improves mixing
  const Matrix p = uniformize(q, rate);

  // The uniformized matrix of a structured chain is very sparse (a handful
  // of nonzeros per row); a compressed-rows copy makes each power step cost
  // O(nnz) instead of O(n^2).
  const std::size_t n = p.rows();
  std::vector<std::size_t> col_index, row_start(n + 1, 0);
  std::vector<double> value;
  for (std::size_t i = 0; i < n; ++i) {
    row_start[i] = col_index.size();
    const double* row = p.row_data(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] != 0.0) {
        col_index.push_back(j);
        value.push_back(row[j]);
      }
    }
  }
  row_start[n] = col_index.size();
  auto sparse_vec_mat = [&](const Vector& v) {
    Vector r(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double vi = v[i];
      if (vi == 0.0) continue;
      for (std::size_t k = row_start[i]; k < row_start[i + 1]; ++k)
        r[col_index[k]] += vi * value[k];
    }
    return r;
  };

  // Poisson(rate*t) weights, accumulated until the missed tail mass < epsilon.
  const double a = rate * t;
  Vector v = pi0;               // pi0 * P^k
  Vector acc(pi0.size(), 0.0);
  double log_w = -a;            // log of Poisson pmf at k=0
  double cum = 0.0;
  for (std::size_t k = 0;; ++k) {
    const double w = std::exp(log_w);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += w * v[i];
    cum += w;
    if (1.0 - cum < epsilon) break;
    // Hard stop far beyond the Poisson bulk; with the tail check above this
    // is unreachable for sane inputs but bounds the loop for tiny epsilon.
    if (k > 1000 + static_cast<std::size_t>(10.0 * a)) break;
    v = sparse_vec_mat(v);
    log_w += std::log(a) - std::log(static_cast<double>(k + 1));
  }
  // Renormalize the truncated sum so the result is exactly a distribution.
  const double total = linalg::sum(acc);
  for (double& x : acc) x /= total;
  return acc;
}

}  // namespace perfbg::markov
