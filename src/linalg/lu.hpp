// LU factorization with partial pivoting, and the solve/inverse operations
// built on it. This is the only linear-system machinery the QBD solver needs.
//
// The elimination tracks per-row nonzero extents [lo, hi): the update loop for
// a pivot row stops at that row's hi instead of n, and pivot candidates whose
// row starts after the pivot column are skipped outright. For a dense matrix
// the extents are [0, n) and the factorization is the classical one; for a
// banded or profile (skyline) matrix the same code does band-proportional
// work, including pivoting-induced band growth, which is why there is no
// separate banded factorization class. Skipped terms are exact structural
// zeros, so the results are bit-identical to the full loops.
#pragma once

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

/// Factorization knobs; the default is the strict behavior.
struct LuOptions {
  /// Permits an exactly-zero pivot in the final column only, instead of
  /// throwing kSingularMatrix. Used to factor the (rank n-1) censored
  /// boundary generator, whose one-dimensional null space is then recovered
  /// with null_tail_vector().
  bool allow_singular_tail = false;
};

/// PA = LU factorization of a square matrix (partial pivoting).
///
/// Throws std::invalid_argument on non-square input and
/// perfbg::Error{kSingularMatrix} (a std::runtime_error) naming the pivot
/// column and matrix dimension if the matrix is exactly singular (unless
/// LuOptions::allow_singular_tail permits the final pivot to vanish).
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a, LuOptions opts = {});

  std::size_t size() const { return lu_.rows(); }

  /// True when allow_singular_tail was set and the final pivot was zero.
  bool singular_tail() const { return singular_tail_; }

  /// Solves A x = b (column-vector right-hand side).
  Vector solve(const Vector& b) const;

  /// Solves x A = b, i.e. the row-vector system (equivalently Aᵀ xᵀ = bᵀ).
  Vector solve_left(const Vector& b) const;

  /// Solves A X = B for a matrix right-hand side.
  Matrix solve(const Matrix& b) const;

  /// Solves X A = B for a matrix of row right-hand sides: row i of the
  /// result satisfies x A = (row i of B). The row-vector analogue of
  /// solve(Matrix), solving every row in one pass over the factors.
  Matrix solve_left(const Matrix& b) const;

  /// For a (numerically) rank-deficient A whose last pivot is zero or
  /// negligible: the null direction x with x[n-1] = 1, from back-substituting
  /// U x = 0 through rows n-2..0. With PA = LU this solves A x = 0 up to the
  /// discarded final equation. Requires size() >= 1.
  Vector null_tail_vector() const;

  /// A⁻¹ (use sparingly; prefer solve()).
  Matrix inverse() const;

  /// det(A), including the pivot sign.
  double determinant() const;

 private:
  Matrix lu_;                  // combined L (unit lower) and U factors
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is row perm_[i] of A
  std::vector<std::size_t> lo_;    // first possibly-nonzero column of row i of L|U
  std::vector<std::size_t> hi_;    // one past the last possibly-nonzero column
  int sign_ = 1;
  bool singular_tail_ = false;
};

/// Convenience wrappers for one-shot use.
Vector solve(const Matrix& a, const Vector& b);
Matrix inverse(const Matrix& a);

/// Solves the singular system x Q = 0, x·1 = 1 for an irreducible generator /
/// rate matrix Q (rows sum to 0) by replacing the last column with the
/// normalization constraint. Used for small stationary problems where GTH
/// (markov/stationary) is not required.
Vector solve_stationary(const Matrix& q);

}  // namespace perfbg::linalg
