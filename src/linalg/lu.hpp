// LU factorization with partial pivoting, and the solve/inverse operations
// built on it. This is the only linear-system machinery the QBD solver needs.
#pragma once

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

/// PA = LU factorization of a square matrix (partial pivoting).
///
/// Throws std::invalid_argument on non-square input and
/// perfbg::Error{kSingularMatrix} (a std::runtime_error) naming the pivot
/// column and matrix dimension if the matrix is exactly singular.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b (column-vector right-hand side).
  Vector solve(const Vector& b) const;

  /// Solves x A = b, i.e. the row-vector system (equivalently Aᵀ xᵀ = bᵀ).
  Vector solve_left(const Vector& b) const;

  /// Solves A X = B for a matrix right-hand side.
  Matrix solve(const Matrix& b) const;

  /// A⁻¹ (use sparingly; prefer solve()).
  Matrix inverse() const;

  /// det(A), including the pivot sign.
  double determinant() const;

 private:
  Matrix lu_;                  // combined L (unit lower) and U factors
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is row perm_[i] of A
  int sign_ = 1;
};

/// Convenience wrappers for one-shot use.
Vector solve(const Matrix& a, const Vector& b);
Matrix inverse(const Matrix& a);

/// Solves the singular system x Q = 0, x·1 = 1 for an irreducible generator /
/// rate matrix Q (rows sum to 0) by replacing the last column with the
/// normalization constraint. Used for small stationary problems where GTH
/// (markov/stationary) is not required.
Vector solve_stationary(const Matrix& q);

}  // namespace perfbg::linalg
