// Banded square-matrix storage and the banded * dense product kernel.
//
// Row-compressed band storage: row i holds columns [i - kl, i + ku] in a
// contiguous stripe of width kl + ku + 1 (out-of-range slots are stored as
// zeros so the kernels need no edge branches). The chain's A-blocks have
// bandwidth O(phases) against dimension (2X+1) * phases, so the product
// kernel does O(n^2 * bandwidth) work instead of O(n^3).
//
// There is deliberately no separate banded LU here: LuDecomposition
// (linalg/lu.hpp) tracks per-row nonzero extents through the elimination, so
// factoring a banded (or any profile/skyline) matrix through it already does
// band-proportional work, including the partial-pivoting band growth, without
// a second factorization code path to keep correct.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

class BandedMatrix {
 public:
  /// n x n all-zero band with the given bandwidths (clamped to n - 1).
  BandedMatrix(std::size_t n, std::size_t lower, std::size_t upper);

  /// Captures a square matrix with its exact detected bandwidths. Entries
  /// outside the detected band are exact zeros by construction.
  static BandedMatrix from_dense(const Matrix& m);

  std::size_t size() const { return n_; }
  std::size_t lower() const { return kl_; }
  std::size_t upper() const { return ku_; }
  std::size_t band_width() const { return kl_ + ku_ + 1; }

  /// Element access (read-only); zero outside the band.
  double at(std::size_t i, std::size_t j) const;
  /// Writes inside the band; throws outside it.
  void set(std::size_t i, std::size_t j, double v);

  /// C = B * D for a dense D with D.rows() == size().
  Matrix multiply_dense(const Matrix& d) const;

  Matrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::size_t kl_ = 0;
  std::size_t ku_ = 0;
  std::vector<double> stripe_;  // n_ rows x band_width(), row-major
};

}  // namespace perfbg::linalg
