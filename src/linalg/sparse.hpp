// CSR sparse matrix with the two product kernels the QBD solvers need:
// sparse * dense and dense * sparse, both producing dense results.
//
// The solvers never form sparse iterates — R, G and the LR factors fill in
// after one linear solve — so there is no sparse * sparse kernel and no
// incremental mutation API. A SparseMatrix is built once from an assembled
// A-block (exact structural zeros) and used read-only. Both kernels stream
// the dense operand row-major, so the inner loops are contiguous:
//
//   multiply_dense       C = S * B: for each CSR entry (i,k,v), C[i,:] += v * B[k,:]
//   left_multiply_dense  C = A * S: for each dense a_ik != 0, scatter row k of S
//
// Cost is rows * nnz-per-row work instead of n^3; for the chain's A-blocks
// (O(n * phases) nonzeros) that turns an O(n^3) product into O(n^2 * phases).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() = default;

  /// Compresses exact nonzeros of `m` (no epsilon thresholding).
  static SparseMatrix from_dense(const Matrix& m);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// C = S * B (B dense with B.rows() == cols()).
  Matrix multiply_dense(const Matrix& b) const;

  /// C = A * S (A dense with A.cols() == rows()).
  Matrix left_multiply_dense(const Matrix& a) const;

  /// C += A * S, in place (shape of C must be A.rows() x cols()).
  void add_left_multiply(const Matrix& a, Matrix& c) const;

  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;  // rows() + 1 offsets into col_/values_
  std::vector<std::size_t> col_;
  std::vector<double> values_;
};

}  // namespace perfbg::linalg
