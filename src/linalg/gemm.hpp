// Cache-blocked, register-tiled dense GEMM.
//
// The naive row-major triple loop tops out well below machine throughput once
// the operands outgrow L1 (the bg_buffer=20 chain has 82x82 iterates and a
// ~1000-row boundary system). This kernel uses the classical three-level
// blocking scheme (Goto-style): K and M are partitioned into KC x MC blocks,
// the A block is packed into MR-row micro-panels and the B block into NR-
// column micro-panels, and a 4x8 register micro-kernel accumulates
// C[4x8] += A[4xKC] * B[KCx8] from the packed panels, so every inner-loop
// load is contiguous and the accumulators live in registers.
//
// Small products dispatch to the naive zero-skipping loop — below the tile
// size the packing overhead outweighs the locality win.
#pragma once

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

/// C = A * B. The entry point behind Matrix::operator*; dispatches between
/// the naive loop and the tiled kernel on operand size.
Matrix multiply(const Matrix& a, const Matrix& b);

/// C += A * B, in place. C must already have shape A.rows() x B.cols().
void gemm_add(const Matrix& a, const Matrix& b, Matrix& c);

/// C -= A * B, in place. C must already have shape A.rows() x B.cols().
void gemm_sub(const Matrix& a, const Matrix& b, Matrix& c);

/// Smallest dimension (of M, N, K) at which the tiled kernel takes over.
inline constexpr std::size_t kGemmTileThreshold = 32;

}  // namespace perfbg::linalg
