// Automatic structure detection for the QBD transition blocks.
//
// The FG/BG chain's A0/A1/A2 blocks are extremely structured — one FG or BG
// event per transition gives O(n * phases) nonzeros arranged in a narrow block
// band — while the solver iterates (R, G, the b0/b2 factors) are dense. The
// solvers pick a product kernel per operand by classifying it once:
//
//   kDiagonal  only the main diagonal is populated
//   kBanded    all nonzeros within a band whose storage beats dense
//   kSparse    low density, but no useful band (CSR wins)
//   kDense     anything else (tiled GEMM territory)
//
// Detection is a single O(n^2) scan — noise against the O(n^3) products it
// routes — and is also exported on chain-assembly spans so the structure of
// every workload's blocks is visible in trace profiles.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

enum class StructureKind { kEmpty, kDiagonal, kBanded, kSparse, kDense };

/// Lower-case wire name: "empty" / "diagonal" / "banded" / "sparse" / "dense".
const char* structure_kind_name(StructureKind kind);

/// Nonzero profile of a matrix: counts and bandwidths from one exact-zero
/// scan (structural zeros only; no epsilon thresholding — the chain builder
/// writes exact zeros, and a tiny-but-nonzero rate must stay a rate).
struct StructureInfo {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nnz = 0;
  /// max(i - j) over nonzeros (0 when none below the diagonal).
  std::size_t lower_bandwidth = 0;
  /// max(j - i) over nonzeros (0 when none above the diagonal).
  std::size_t upper_bandwidth = 0;

  /// nnz / (rows * cols); 0 for an empty shape.
  double density() const;
  /// Fraction of a dense matrix the band storage would occupy
  /// ((kl + ku + 1) / cols, capped at 1); 1 for an empty shape.
  double band_fill() const;
  /// Classification used for kernel routing (see file header).
  StructureKind kind() const;
};

/// One-pass exact-zero scan.
StructureInfo detect_structure(const Matrix& m);

/// Density at or below which CSR products are routed instead of dense ones.
inline constexpr double kSparseDensityCutoff = 0.20;
/// Band-fill at or below which banded storage is preferred over CSR.
inline constexpr double kBandedFillCutoff = 0.35;

}  // namespace perfbg::linalg
