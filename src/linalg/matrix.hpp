// Dense row-major double matrix, the numeric workhorse of the QBD solver.
//
// The matrices in this project are small (QBD blocks of size (2X+1)*A, i.e.
// tens to a few hundred rows), so a straightforward dense implementation with
// cache-friendly row-major multiply is both adequate and dependency-free.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace perfbg::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Value-semantic regular type: copyable, movable, equality-comparable.
/// Element access is bounds-checked via PERFBG_REQUIRE in operator() to keep
/// misuse loud; the hot inner loops use raw spans internally.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all elements initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from a nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix diagonal(const Vector& d);
  /// n x n matrix of zeros.
  static Matrix zeros(std::size_t n) { return Matrix(n, n, 0.0); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j);
  double operator()(std::size_t i, std::size_t j) const;

  /// Raw pointer to row i (contiguous cols() doubles).
  double* row_data(std::size_t i) { return data_.data() + i * cols_; }
  const double* row_data(std::size_t i) const { return data_.data() + i * cols_; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  Matrix transposed() const;

  /// Sum of every element of row i.
  double row_sum(std::size_t i) const;

  /// max_i sum_j |a_ij| — the matrix infinity norm.
  double inf_norm() const;
  /// max_ij |a_ij| - |b_ij| style elementwise distance, used for convergence tests.
  double max_abs_diff(const Matrix& other) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);
Matrix operator*(const Matrix& a, const Matrix& b);

/// Row vector times matrix: returns v * A (v has A.rows() entries).
Vector vec_mat(const Vector& v, const Matrix& a);
/// Matrix times column vector: returns A * v (v has A.cols() entries).
Vector mat_vec(const Matrix& a, const Vector& v);

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);
/// Sum of all entries.
double sum(const Vector& v);
/// Elementwise scale.
Vector scaled(Vector v, double s);
/// a + b elementwise.
Vector add(Vector a, const Vector& b);

/// Kronecker product a (x) b.
Matrix kron(const Matrix& a, const Matrix& b);

/// Stitches a matrix from a grid of equally-shaped-or-empty blocks. Empty
/// blocks stand for all-zero; every row of blocks must have a consistent
/// height and every column a consistent width.
Matrix from_blocks(const std::vector<std::vector<Matrix>>& blocks);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace perfbg::linalg
