#include "linalg/sparse.hpp"

#include "obs/span.hpp"
#include "util/check.hpp"

namespace perfbg::linalg {

SparseMatrix SparseMatrix::from_dense(const Matrix& m) {
  SparseMatrix s;
  s.rows_ = m.rows();
  s.cols_ = m.cols();
  s.row_start_.resize(s.rows_ + 1, 0);
  for (std::size_t i = 0; i < s.rows_; ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < s.cols_; ++j) {
      if (row[j] == 0.0) continue;
      s.col_.push_back(j);
      s.values_.push_back(row[j]);
    }
    s.row_start_[i + 1] = s.values_.size();
  }
  return s;
}

Matrix SparseMatrix::multiply_dense(const Matrix& b) const {
  PERFBG_REQUIRE(cols_ == b.rows(), "shape mismatch in sparse * dense");
  obs::ScopedSpan span("linalg.spmm");
  Matrix c(rows_, b.cols(), 0.0);
  const std::size_t width = b.cols();
  for (std::size_t i = 0; i < rows_; ++i) {
    double* ci = c.row_data(i);
    for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e) {
      const double v = values_[e];
      const double* bk = b.row_data(col_[e]);
      for (std::size_t j = 0; j < width; ++j) ci[j] += v * bk[j];
    }
  }
  return c;
}

Matrix SparseMatrix::left_multiply_dense(const Matrix& a) const {
  Matrix c(a.rows(), cols_, 0.0);
  add_left_multiply(a, c);
  return c;
}

void SparseMatrix::add_left_multiply(const Matrix& a, Matrix& c) const {
  PERFBG_REQUIRE(a.cols() == rows_, "shape mismatch in dense * sparse");
  PERFBG_REQUIRE(c.rows() == a.rows() && c.cols() == cols_,
                 "accumulator shape mismatch in dense * sparse");
  obs::ScopedSpan span("linalg.spmm");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_data(i);
    double* ci = c.row_data(i);
    for (std::size_t k = 0; k < rows_; ++k) {
      const double aik = ai[k];
      if (aik == 0.0) continue;
      for (std::size_t e = row_start_[k]; e < row_start_[k + 1]; ++e)
        ci[col_[e]] += aik * values_[e];
    }
  }
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double* row = m.row_data(i);
    for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e)
      row[col_[e]] = values_[e];
  }
  return m;
}

}  // namespace perfbg::linalg
