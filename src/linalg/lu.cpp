#include "linalg/lu.hpp"

#include <cmath>
#include <sstream>

#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace perfbg::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  PERFBG_REQUIRE(lu_.is_square(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  // The factorization is the innermost O(n^3) kernel of every solver
  // iteration, so it carries a span (no-op unless a collector is installed).
  obs::ScopedSpan span("linalg.lu.factor");
  span.attr("n", obs::JsonValue(static_cast<std::int64_t>(n)));
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a_ik| for i >= k.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) {
      std::ostringstream os;
      os << "LU: matrix is singular: every candidate pivot in column " << k << " of the "
         << n << " x " << n << " matrix has magnitude 0";
      ErrorContext ctx;
      ctx.matrix_size = n;
      throw Error(ErrorCode::kSingularMatrix, os.str(), ctx);
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      double* ri = lu_.row_data(i);
      const double* rk = lu_.row_data(k);
      for (std::size_t j = k + 1; j < n; ++j) ri[j] -= m * rk[j];
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.size() == n, "rhs size mismatch");
  Vector x(n);
  // Forward substitution with permuted rhs: L y = P b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    const double* ri = lu_.row_data(i);
    for (std::size_t j = 0; j < i; ++j) s -= ri[j] * x[j];
    x[i] = s;
  }
  // Back substitution: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    const double* ri = lu_.row_data(ii);
    for (std::size_t j = ii + 1; j < n; ++j) s -= ri[j] * x[j];
    x[ii] = s / ri[ii];
  }
  return x;
}

Vector LuDecomposition::solve_left(const Vector& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.size() == n, "rhs size mismatch");
  // x A = b  <=>  Aᵀ xᵀ = bᵀ. With PA = LU: Aᵀ = Uᵀ Lᵀ Pᵀ... solve in two
  // triangular sweeps then un-permute.
  Vector y(n);
  // Uᵀ y = b (forward, Uᵀ is lower triangular).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(j, i) * y[j];
    y[i] = s / lu_(i, i);
  }
  // Lᵀ z = y (backward, Lᵀ is unit upper triangular).
  Vector z(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(j, ii) * z[j];
    z[ii] = s;
  }
  // x P = z ... row i of PA is row perm_[i] of A, so x[perm_[i]] = z[i].
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.rows() == n, "rhs row count mismatch");
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    Vector xc = solve(col);
    for (std::size_t i = 0; i < n; ++i) x(i, j) = xc[i];
  }
  return x;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(size())); }

double LuDecomposition::determinant() const {
  double d = sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

Vector solve(const Matrix& a, const Vector& b) { return LuDecomposition(a).solve(b); }

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

Vector solve_stationary(const Matrix& q) {
  PERFBG_REQUIRE(q.is_square() && q.rows() > 0, "stationary solve needs a square matrix");
  const std::size_t n = q.rows();
  // x Q = 0 with x·1 = 1: replace Q's last column by ones and solve x M = e_n.
  Matrix m = q;
  for (std::size_t i = 0; i < n; ++i) m(i, n - 1) = 1.0;
  Vector rhs(n, 0.0);
  rhs[n - 1] = 1.0;
  return LuDecomposition(std::move(m)).solve_left(rhs);
}

}  // namespace perfbg::linalg
