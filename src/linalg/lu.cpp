#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace perfbg::linalg {

LuDecomposition::LuDecomposition(Matrix a, LuOptions opts) : lu_(std::move(a)) {
  PERFBG_REQUIRE(lu_.is_square(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  // The factorization is the innermost O(n^3) kernel of every solver
  // iteration, so it carries a span (no-op unless a collector is installed).
  obs::ScopedSpan span("linalg.lu.factor");
  span.attr("n", obs::JsonValue(static_cast<std::int64_t>(n)));
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  // Initial extents: [first nonzero, last nonzero + 1) per row. Everything
  // outside a row's extent is an exact stored zero, and the elimination below
  // preserves that invariant, so truncated loops change no values.
  lo_.assign(n, 0);
  hi_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = lu_.row_data(i);
    std::size_t lo = n, hi = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] == 0.0) continue;
      if (lo == n) lo = j;
      hi = j + 1;
    }
    lo_[i] = lo == n ? 0 : lo;
    hi_[i] = hi;
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a_ik| for i >= k. Rows whose extent starts
    // after column k hold an exact zero there and can never win.
    std::size_t piv = k;
    double best = std::abs(lu_.row_data(k)[k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      if (lo_[i] > k) continue;
      const double v = std::abs(lu_.row_data(i)[k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) {
      if (opts.allow_singular_tail && k + 1 == n) {
        singular_tail_ = true;
        break;
      }
      std::ostringstream os;
      os << "LU: matrix is singular: every candidate pivot in column " << k << " of the "
         << n << " x " << n << " matrix has magnitude 0";
      ErrorContext ctx;
      ctx.matrix_size = n;
      throw Error(ErrorCode::kSingularMatrix, os.str(), ctx);
    }
    if (piv != k) {
      double* rk = lu_.row_data(k);
      double* rp = lu_.row_data(piv);
      const std::size_t swap_end = std::max(hi_[k], hi_[piv]);
      for (std::size_t j = 0; j < swap_end; ++j) std::swap(rk[j], rp[j]);
      std::swap(perm_[k], perm_[piv]);
      std::swap(lo_[k], lo_[piv]);
      std::swap(hi_[k], hi_[piv]);
      sign_ = -sign_;
    }
    const double* rk = lu_.row_data(k);
    const double pivot = rk[k];
    const std::size_t row_end = hi_[k];
    for (std::size_t i = k + 1; i < n; ++i) {
      if (lo_[i] > k) continue;  // exact zero below the pivot, nothing to do
      double* ri = lu_.row_data(i);
      const double m = ri[k] / pivot;
      ri[k] = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < row_end; ++j) ri[j] -= m * rk[j];
      hi_[i] = std::max(hi_[i], row_end);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.size() == n, "rhs size mismatch");
  Vector x(n);
  // Forward substitution with permuted rhs: L y = P b. Row i of L is zero
  // before lo_[i].
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    const double* ri = lu_.row_data(i);
    for (std::size_t j = lo_[i]; j < i; ++j) s -= ri[j] * x[j];
    x[i] = s;
  }
  // Back substitution: U x = y. Row ii of U ends at hi_[ii].
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    const double* ri = lu_.row_data(ii);
    for (std::size_t j = ii + 1; j < hi_[ii]; ++j) s -= ri[j] * x[j];
    x[ii] = s / ri[ii];
  }
  return x;
}

Vector LuDecomposition::solve_left(const Vector& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.size() == n, "rhs size mismatch");
  // x A = b  <=>  Aᵀ xᵀ = bᵀ. With PA = LU: Aᵀ = Uᵀ Lᵀ Pᵀ... solve in two
  // triangular sweeps then un-permute.
  Vector y(n);
  // Uᵀ y = b (forward, Uᵀ is lower triangular).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      if (i < hi_[j]) s -= lu_.row_data(j)[i] * y[j];
    }
    y[i] = s / lu_.row_data(i)[i];
  }
  // Lᵀ z = y (backward, Lᵀ is unit upper triangular).
  Vector z(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      if (lo_[j] <= ii) s -= lu_.row_data(j)[ii] * z[j];
    }
    z[ii] = s;
  }
  // x P = z ... row i of PA is row perm_[i] of A, so x[perm_[i]] = z[i].
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.rows() == n, "rhs row count mismatch");
  const std::size_t width = b.cols();
  // All right-hand sides advance through the substitutions together, so the
  // inner loops stream contiguous rows of X instead of revisiting the factor
  // matrix once per column. Per column the arithmetic and its order match the
  // one-column solve exactly.
  Matrix x(n, width);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = b.row_data(perm_[i]);
    double* xi = x.row_data(i);
    for (std::size_t c = 0; c < width; ++c) xi[c] = src[c];
    const double* ri = lu_.row_data(i);
    for (std::size_t j = lo_[i]; j < i; ++j) {
      const double l = ri[j];
      if (l == 0.0) continue;
      const double* xj = x.row_data(j);
      for (std::size_t c = 0; c < width; ++c) xi[c] -= l * xj[c];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = x.row_data(ii);
    const double* ri = lu_.row_data(ii);
    for (std::size_t j = ii + 1; j < hi_[ii]; ++j) {
      const double u = ri[j];
      if (u == 0.0) continue;
      const double* xj = x.row_data(j);
      for (std::size_t c = 0; c < width; ++c) xi[c] -= u * xj[c];
    }
    const double d = ri[ii];
    for (std::size_t c = 0; c < width; ++c) xi[c] /= d;
  }
  return x;
}

Matrix LuDecomposition::solve_left(const Matrix& b) const {
  const std::size_t n = size();
  PERFBG_REQUIRE(b.cols() == n, "rhs column count mismatch");
  const std::size_t nrhs = b.rows();
  // Work on the transpose so every inner loop streams one contiguous row per
  // right-hand side; per rhs the arithmetic matches solve_left(Vector).
  const Matrix bt = b.transposed();  // n x nrhs
  Matrix yt(n, nrhs);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = bt.row_data(i);
    double* yi = yt.row_data(i);
    for (std::size_t c = 0; c < nrhs; ++c) yi[c] = src[c];
    for (std::size_t j = 0; j < i; ++j) {
      if (i >= hi_[j]) continue;
      const double u = lu_.row_data(j)[i];
      if (u == 0.0) continue;
      const double* yj = yt.row_data(j);
      for (std::size_t c = 0; c < nrhs; ++c) yi[c] -= u * yj[c];
    }
    const double d = lu_.row_data(i)[i];
    for (std::size_t c = 0; c < nrhs; ++c) yi[c] /= d;
  }
  Matrix zt(n, nrhs);
  for (std::size_t ii = n; ii-- > 0;) {
    const double* yi = yt.row_data(ii);
    double* zi = zt.row_data(ii);
    for (std::size_t c = 0; c < nrhs; ++c) zi[c] = yi[c];
    for (std::size_t j = ii + 1; j < n; ++j) {
      if (lo_[j] > ii) continue;
      const double l = lu_.row_data(j)[ii];
      if (l == 0.0) continue;
      const double* zj = zt.row_data(j);
      for (std::size_t c = 0; c < nrhs; ++c) zi[c] -= l * zj[c];
    }
  }
  Matrix xt(n, nrhs);
  for (std::size_t i = 0; i < n; ++i) {
    const double* zi = zt.row_data(i);
    double* xi = xt.row_data(perm_[i]);
    for (std::size_t c = 0; c < nrhs; ++c) xi[c] = zi[c];
  }
  return xt.transposed();
}

Vector LuDecomposition::null_tail_vector() const {
  const std::size_t n = size();
  PERFBG_REQUIRE(n > 0, "null_tail_vector needs a non-empty matrix");
  Vector x(n, 0.0);
  x[n - 1] = 1.0;
  for (std::size_t ii = n - 1; ii-- > 0;) {
    double s = 0.0;
    const double* ri = lu_.row_data(ii);
    for (std::size_t j = ii + 1; j < hi_[ii]; ++j) s -= ri[j] * x[j];
    x[ii] = s / ri[ii];
  }
  return x;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(size())); }

double LuDecomposition::determinant() const {
  if (singular_tail_) return 0.0;
  double d = sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_.row_data(i)[i];
  return d;
}

Vector solve(const Matrix& a, const Vector& b) { return LuDecomposition(a).solve(b); }

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

Vector solve_stationary(const Matrix& q) {
  PERFBG_REQUIRE(q.is_square() && q.rows() > 0, "stationary solve needs a square matrix");
  const std::size_t n = q.rows();
  // x Q = 0 with x·1 = 1: replace Q's last column by ones and solve x M = e_n.
  Matrix m = q;
  for (std::size_t i = 0; i < n; ++i) m(i, n - 1) = 1.0;
  Vector rhs(n, 0.0);
  rhs[n - 1] = 1.0;
  return LuDecomposition(std::move(m)).solve_left(rhs);
}

}  // namespace perfbg::linalg
