#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "linalg/gemm.hpp"
#include "util/check.hpp"

namespace perfbg::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    PERFBG_REQUIRE(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::operator()(std::size_t i, std::size_t j) {
  PERFBG_REQUIRE(i < rows_ && j < cols_, "matrix index out of range");
  return data_[i * cols_ + j];
}

double Matrix::operator()(std::size_t i, std::size_t j) const {
  PERFBG_REQUIRE(i < rows_ && j < cols_, "matrix index out of range");
  return data_[i * cols_ + j];
}

Matrix& Matrix::operator+=(const Matrix& other) {
  PERFBG_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in +=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  PERFBG_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in -=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Tiled so both the source rows and destination rows stay cache-resident;
  // the element-at-a-time version strides by rows_ through t on every write.
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < rows_; i0 += kTile) {
    const std::size_t i1 = std::min(rows_, i0 + kTile);
    for (std::size_t j0 = 0; j0 < cols_; j0 += kTile) {
      const std::size_t j1 = std::min(cols_, j0 + kTile);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* src = data_.data() + i * cols_;
        for (std::size_t j = j0; j < j1; ++j) t.data_[j * rows_ + i] = src[j];
      }
    }
  }
  return t;
}

double Matrix::row_sum(std::size_t i) const {
  PERFBG_REQUIRE(i < rows_, "row index out of range");
  double s = 0.0;
  const double* r = row_data(i);
  for (std::size_t j = 0; j < cols_; ++j) s += r[j];
  return s;
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* r = row_data(i);
    for (std::size_t j = 0; j < cols_; ++j) s += std::abs(r[j]);
    best = std::max(best, s);
  }
  return best;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  PERFBG_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in max_abs_diff");
  double best = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k)
    best = std::max(best, std::abs(data_[k] - other.data_[k]));
  return best;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  PERFBG_REQUIRE(a.cols() == b.rows(), "shape mismatch in matrix multiply");
  return multiply(a, b);
}

Vector vec_mat(const Vector& v, const Matrix& a) {
  PERFBG_REQUIRE(v.size() == a.rows(), "shape mismatch in vec_mat");
  Vector r(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const double* ai = a.row_data(i);
    for (std::size_t j = 0; j < a.cols(); ++j) r[j] += vi * ai[j];
  }
  return r;
}

Vector mat_vec(const Matrix& a, const Vector& v) {
  PERFBG_REQUIRE(v.size() == a.cols(), "shape mismatch in mat_vec");
  Vector r(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_data(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += ai[j] * v[j];
    r[i] = s;
  }
  return r;
}

double dot(const Vector& a, const Vector& b) {
  PERFBG_REQUIRE(a.size() == b.size(), "size mismatch in dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double sum(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

Vector scaled(Vector v, double s) {
  for (double& x : v) x *= s;
  return v;
}

Vector add(Vector a, const Vector& b) {
  PERFBG_REQUIRE(a.size() == b.size(), "size mismatch in add");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  return a;
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows() * b.rows(), a.cols() * b.cols(), 0.0);
  // k-outer/ij-inner order writes each output row left to right in one pass
  // instead of revisiting it once per (i, j) pair of a.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_data(i);
    for (std::size_t k = 0; k < b.rows(); ++k) {
      double* crow = c.row_data(i * b.rows() + k);
      const double* bk = b.row_data(k);
      for (std::size_t j = 0; j < a.cols(); ++j) {
        const double aij = ai[j];
        if (aij == 0.0) continue;
        double* out = crow + j * b.cols();
        for (std::size_t l = 0; l < b.cols(); ++l) out[l] = aij * bk[l];
      }
    }
  }
  return c;
}

Matrix from_blocks(const std::vector<std::vector<Matrix>>& blocks) {
  PERFBG_REQUIRE(!blocks.empty() && !blocks.front().empty(), "empty block grid");
  const std::size_t brows = blocks.size();
  const std::size_t bcols = blocks.front().size();
  std::vector<std::size_t> heights(brows, 0), widths(bcols, 0);
  for (std::size_t bi = 0; bi < brows; ++bi) {
    PERFBG_REQUIRE(blocks[bi].size() == bcols, "ragged block grid");
    for (std::size_t bj = 0; bj < bcols; ++bj) {
      const Matrix& m = blocks[bi][bj];
      if (m.empty()) continue;
      if (heights[bi] == 0) heights[bi] = m.rows();
      if (widths[bj] == 0) widths[bj] = m.cols();
      PERFBG_REQUIRE(m.rows() == heights[bi] && m.cols() == widths[bj],
                     "inconsistent block shapes");
    }
  }
  for (std::size_t bi = 0; bi < brows; ++bi)
    PERFBG_REQUIRE(heights[bi] > 0, "block row has no non-empty block to fix its height");
  for (std::size_t bj = 0; bj < bcols; ++bj)
    PERFBG_REQUIRE(widths[bj] > 0, "block column has no non-empty block to fix its width");

  std::size_t total_rows = 0, total_cols = 0;
  for (auto h : heights) total_rows += h;
  for (auto w : widths) total_cols += w;
  Matrix out(total_rows, total_cols, 0.0);
  std::size_t roff = 0;
  for (std::size_t bi = 0; bi < brows; ++bi) {
    std::size_t coff = 0;
    for (std::size_t bj = 0; bj < bcols; ++bj) {
      const Matrix& m = blocks[bi][bj];
      if (!m.empty()) {
        for (std::size_t i = 0; i < m.rows(); ++i)
          for (std::size_t j = 0; j < m.cols(); ++j) out(roff + i, coff + j) = m(i, j);
      }
      coff += widths[bj];
    }
    roff += heights[bi];
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j) {
      os << m(i, j);
      if (j + 1 < m.cols()) os << ", ";
    }
    os << (i + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

}  // namespace perfbg::linalg
