#include "linalg/spectral.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace perfbg::linalg {

double spectral_radius(const Matrix& a, double tol, int max_iters) {
  PERFBG_REQUIRE(a.is_square(), "spectral_radius requires a square matrix");
  const std::size_t n = a.rows();
  if (n == 0) return 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      PERFBG_REQUIRE(a(i, j) >= 0.0, "spectral_radius requires a nonnegative matrix");

  Vector v(n, 1.0 / static_cast<double>(n));
  double lambda = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    Vector w = mat_vec(a, v);
    double norm = 0.0;
    for (double x : w) norm += x;
    if (norm == 0.0) return 0.0;  // nilpotent direction: radius 0 along v
    const double prev = lambda;
    lambda = norm;  // since sum(v) == 1, sum(Av) estimates the Perron root
    for (double& x : w) x /= norm;
    v = std::move(w);
    if (it > 0 && std::abs(lambda - prev) <= tol * std::max(1.0, std::abs(lambda))) break;
  }
  return lambda;
}

std::optional<std::array<double, 2>> eigenvalues_2x2(const Matrix& a) {
  PERFBG_REQUIRE(a.rows() == 2 && a.cols() == 2, "eigenvalues_2x2 needs a 2x2 matrix");
  const double tr = a(0, 0) + a(1, 1);
  const double det = a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0);
  const double disc = tr * tr / 4.0 - det;
  if (disc < 0.0) return std::nullopt;
  const double s = std::sqrt(disc);
  return std::array<double, 2>{tr / 2.0 + s, tr / 2.0 - s};
}

}  // namespace perfbg::linalg
