// Spectral utilities: dominant-eigenvalue estimation for nonnegative
// matrices (stability checks on the QBD rate matrix R) and general real
// eigenvalues of 2x2 matrices (closed forms used by the MMPP fitter).
#pragma once

#include <array>
#include <optional>

#include "linalg/matrix.hpp"

namespace perfbg::linalg {

/// Estimates the spectral radius of a (elementwise) nonnegative square matrix
/// by power iteration on a strictly positive start vector.
///
/// For the nonnegative matrices arising in matrix-analytic methods the power
/// method converges to the Perron root. `tol` is the relative change between
/// consecutive Rayleigh-style estimates at which we stop.
double spectral_radius(const Matrix& a, double tol = 1e-12, int max_iters = 100000);

/// Both eigenvalues of a real 2x2 matrix, if they are real; std::nullopt when
/// the pair is complex. Returned in no particular order.
std::optional<std::array<double, 2>> eigenvalues_2x2(const Matrix& a);

}  // namespace perfbg::linalg
