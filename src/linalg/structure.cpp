#include "linalg/structure.hpp"

#include <algorithm>

namespace perfbg::linalg {

const char* structure_kind_name(StructureKind kind) {
  switch (kind) {
    case StructureKind::kEmpty: return "empty";
    case StructureKind::kDiagonal: return "diagonal";
    case StructureKind::kBanded: return "banded";
    case StructureKind::kSparse: return "sparse";
    case StructureKind::kDense: return "dense";
  }
  return "unknown";
}

double StructureInfo::density() const {
  const std::size_t cells = rows * cols;
  return cells == 0 ? 0.0 : static_cast<double>(nnz) / static_cast<double>(cells);
}

double StructureInfo::band_fill() const {
  if (cols == 0) return 1.0;
  const std::size_t width = lower_bandwidth + upper_bandwidth + 1;
  return std::min(1.0, static_cast<double>(width) / static_cast<double>(cols));
}

StructureKind StructureInfo::kind() const {
  if (nnz == 0) return StructureKind::kEmpty;
  if (rows == cols && lower_bandwidth == 0 && upper_bandwidth == 0)
    return StructureKind::kDiagonal;
  // Band storage must beat dense by a margin to be worth the indirection;
  // the A-blocks (bandwidth ~ a few phases) clear it by orders of magnitude.
  if (rows == cols && band_fill() <= kBandedFillCutoff) return StructureKind::kBanded;
  if (density() <= kSparseDensityCutoff) return StructureKind::kSparse;
  return StructureKind::kDense;
}

StructureInfo detect_structure(const Matrix& m) {
  StructureInfo info;
  info.rows = m.rows();
  info.cols = m.cols();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (row[j] == 0.0) continue;
      ++info.nnz;
      if (j < i) info.lower_bandwidth = std::max(info.lower_bandwidth, i - j);
      if (j > i) info.upper_bandwidth = std::max(info.upper_bandwidth, j - i);
    }
  }
  return info;
}

}  // namespace perfbg::linalg
