#include "linalg/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/span.hpp"
#include "util/check.hpp"

namespace perfbg::linalg {
namespace {

// Micro-kernel register tile: MR rows of A against NR columns of B.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
// Cache blocking: a KC x NC slab of B (~176 KiB) stays L2-resident while the
// MC x KC slab of A (~240 KiB) streams through it one micro-panel at a time.
constexpr std::size_t kKc = 256;
constexpr std::size_t kMc = 120;
constexpr std::size_t kNc = 1024;

// C[mr x nr] (+/-)= Apanel[kc x MR] * Bpanel[kc x NR]. The panels are packed
// k-major with fixed MR/NR minor strides and zero-padded tails, so the loads
// are contiguous and the sixteen accumulators never leave registers; only the
// writeback is bounded by the true tile size.
template <int Sign>
void micro_kernel(std::size_t kc, const double* __restrict a_panel,
                  const double* __restrict b_panel, double* __restrict c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  double acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const double* a = a_panel + k * kMr;
    const double* b = b_panel + k * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const double av = a[r];
      for (std::size_t c2 = 0; c2 < kNr; ++c2) acc[r][c2] += av * b[c2];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (std::size_t c2 = 0; c2 < nr; ++c2)
      crow[c2] += Sign > 0 ? acc[r][c2] : -acc[r][c2];
  }
}

// Packs A[i0 .. i0+mc, k0 .. k0+kc] into MR-row micro-panels, k-major within
// each panel, zero-padding the last panel's missing rows.
void pack_a(const Matrix& a, std::size_t i0, std::size_t mc, std::size_t k0,
            std::size_t kc, double* dst) {
  for (std::size_t ip = 0; ip < mc; ip += kMr) {
    const std::size_t rows = std::min(kMr, mc - ip);
    double* panel = dst + ip * kc;
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = a.row_data(i0 + ip + r) + k0;
      for (std::size_t k = 0; k < kc; ++k) panel[k * kMr + r] = src[k];
    }
    for (std::size_t r = rows; r < kMr; ++r)
      for (std::size_t k = 0; k < kc; ++k) panel[k * kMr + r] = 0.0;
  }
}

// Packs B[k0 .. k0+kc, j0 .. j0+nc] into NR-column micro-panels, k-major
// within each panel, zero-padding the last panel's missing columns.
void pack_b(const Matrix& b, std::size_t k0, std::size_t kc, std::size_t j0,
            std::size_t nc, double* dst) {
  for (std::size_t jp = 0; jp < nc; jp += kNr) {
    const std::size_t cols = std::min(kNr, nc - jp);
    double* panel = dst + jp * kc;
    for (std::size_t k = 0; k < kc; ++k) {
      const double* src = b.row_data(k0 + k) + j0 + jp;
      double* out = panel + k * kNr;
      for (std::size_t c = 0; c < cols; ++c) out[c] = src[c];
      for (std::size_t c = cols; c < kNr; ++c) out[c] = 0.0;
    }
  }
}

template <int Sign>
void gemm_tiled(const Matrix& a, const Matrix& b, Matrix& c) {
  obs::ScopedSpan span("linalg.gemm");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  // Pack buffers are per-thread scratch: sweep workers multiply concurrently.
  thread_local std::vector<double> a_pack;
  thread_local std::vector<double> b_pack;
  a_pack.resize(kMc * kKc + kMr * kKc);
  b_pack.resize(kKc * kNc + kNr * kKc);

  for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
    const std::size_t nc = std::min(kNc, n - j0);
    const std::size_t nc_panels = (nc + kNr - 1) / kNr;
    for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
      const std::size_t kc = std::min(kKc, k - k0);
      pack_b(b, k0, kc, j0, nc, b_pack.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kMc) {
        const std::size_t mc = std::min(kMc, m - i0);
        const std::size_t mc_panels = (mc + kMr - 1) / kMr;
        pack_a(a, i0, mc, k0, kc, a_pack.data());
        for (std::size_t jp = 0; jp < nc_panels; ++jp) {
          const std::size_t nr = std::min(kNr, nc - jp * kNr);
          const double* b_panel = b_pack.data() + jp * kNr * kc;
          for (std::size_t ip = 0; ip < mc_panels; ++ip) {
            const std::size_t mr = std::min(kMr, mc - ip * kMr);
            micro_kernel<Sign>(kc, a_pack.data() + ip * kMr * kc, b_panel,
                               c.row_data(i0 + ip * kMr) + j0 + jp * kNr,
                               c.cols(), mr, nr);
          }
        }
      }
    }
  }
}

template <int Sign>
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t width = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_data(i);
    double* ci = c.row_data(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = Sign > 0 ? ai[k] : -ai[k];
      if (aik == 0.0) continue;
      const double* bk = b.row_data(k);
      for (std::size_t j = 0; j < width; ++j) ci[j] += aik * bk[j];
    }
  }
}

template <int Sign>
void gemm_dispatch(const Matrix& a, const Matrix& b, Matrix& c) {
  PERFBG_REQUIRE(a.cols() == b.rows(), "shape mismatch in gemm");
  PERFBG_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                 "accumulator shape mismatch in gemm");
  const std::size_t min_dim = std::min({a.rows(), a.cols(), b.cols()});
  if (min_dim < kGemmTileThreshold) {
    gemm_naive<Sign>(a, b, c);
  } else {
    gemm_tiled<Sign>(a, b, c);
  }
}

}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  if (a.rows() != 0 && a.cols() != 0 && b.cols() != 0)
    gemm_dispatch<1>(a, b, c);
  return c;
}

void gemm_add(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.rows() == 0 || a.cols() == 0 || b.cols() == 0) return;
  gemm_dispatch<1>(a, b, c);
}

void gemm_sub(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.rows() == 0 || a.cols() == 0 || b.cols() == 0) return;
  gemm_dispatch<-1>(a, b, c);
}

}  // namespace perfbg::linalg
