#include "linalg/banded.hpp"

#include <algorithm>

#include "linalg/structure.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"

namespace perfbg::linalg {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t lower, std::size_t upper)
    : n_(n),
      kl_(n == 0 ? 0 : std::min(lower, n - 1)),
      ku_(n == 0 ? 0 : std::min(upper, n - 1)),
      stripe_(n * (kl_ + ku_ + 1), 0.0) {}

BandedMatrix BandedMatrix::from_dense(const Matrix& m) {
  PERFBG_REQUIRE(m.is_square(), "banded storage requires a square matrix");
  const StructureInfo info = detect_structure(m);
  BandedMatrix b(m.rows(), info.lower_bandwidth, info.upper_bandwidth);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    const std::size_t lo = i > b.kl_ ? i - b.kl_ : 0;
    const std::size_t hi = std::min(m.cols(), i + b.ku_ + 1);
    for (std::size_t j = lo; j < hi; ++j)
      if (row[j] != 0.0) b.set(i, j, row[j]);
  }
  return b;
}

double BandedMatrix::at(std::size_t i, std::size_t j) const {
  PERFBG_REQUIRE(i < n_ && j < n_, "banded index out of range");
  if (j + kl_ < i || j > i + ku_) return 0.0;
  return stripe_[i * band_width() + (j + kl_ - i)];
}

void BandedMatrix::set(std::size_t i, std::size_t j, double v) {
  PERFBG_REQUIRE(i < n_ && j < n_, "banded index out of range");
  PERFBG_REQUIRE(j + kl_ >= i && j <= i + ku_, "banded write outside the band");
  stripe_[i * band_width() + (j + kl_ - i)] = v;
}

Matrix BandedMatrix::multiply_dense(const Matrix& d) const {
  PERFBG_REQUIRE(n_ == d.rows(), "shape mismatch in banded * dense");
  obs::ScopedSpan span("linalg.spmm");
  Matrix c(n_, d.cols(), 0.0);
  const std::size_t width = d.cols();
  for (std::size_t i = 0; i < n_; ++i) {
    double* ci = c.row_data(i);
    const double* stripe = stripe_.data() + i * band_width();
    const std::size_t lo = i > kl_ ? i - kl_ : 0;
    const std::size_t hi = std::min(n_, i + ku_ + 1);
    for (std::size_t k = lo; k < hi; ++k) {
      const double v = stripe[k + kl_ - i];
      if (v == 0.0) continue;
      const double* dk = d.row_data(k);
      for (std::size_t j = 0; j < width; ++j) ci[j] += v * dk[j];
    }
  }
  return c;
}

Matrix BandedMatrix::to_dense() const {
  Matrix m(n_, n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t lo = i > kl_ ? i - kl_ : 0;
    const std::size_t hi = std::min(n_, i + ku_ + 1);
    double* row = m.row_data(i);
    for (std::size_t j = lo; j < hi; ++j)
      row[j] = stripe_[i * band_width() + (j + kl_ - i)];
  }
  return m;
}

}  // namespace perfbg::linalg
